"""Wire protocol between PapyrusKV runtimes (dispatcher ↔ handler).

Three private communicators per database keep runtime traffic invisible
to the application (paper §2.4):

* ``srv``  — requests to the owner rank's message handler;
* ``rsp``  — synchronous responses (remote get results, PUT_SYNC acks);
* ``ack``  — asynchronous migration acknowledgements, drained at
  fence/barrier/close time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# message types on the srv comm
MIGRATE = 1       # bulk key-value chunk from a remote MemTable
PUT_SYNC = 2      # single synchronous put/delete (sequential consistency)
GET = 3           # remote get request
STOP = 4          # handler shutdown
CHECKPOINT_MARK = 5  # reserved for future coordinated snapshot protocols
MGET = 6          # batched multi-get (one request per owner per bulk get)
PUT_SYNC_BATCH = 7  # per-owner batch of synchronous puts (bulk pipeline)
FETCH_TABLE = 8   # ship a whole SSTable's files (peer rebuild)
REPLICA_PUT = 9   # replicated put/delete fan-out to a group member
HEARTBEAT = 10    # failure-detector ping (pong travels on the ack comm)
REPLICA_SYNC = 11  # re-replication push after a rank death
INDEX_PULL = 12   # fetch replicated SSTable metadata bundles from an owner
INDEX_PUBLISH = 13  # owner's eager push of fresh bundles to its replica group

# GET reply status
FOUND = 0
NOT_FOUND = 1
NOT_IN_MEMORY = 2  # same storage group: read my SSTables yourself
DEGRADED = 3       # the owner's key range is quarantined (corruption)

#: (key, value, tombstone)
Pair = Tuple[bytes, bytes, bool]

#: one multi-get outcome: (status, value-or-None, tombstone)
MGetResult = Tuple[int, Optional[bytes], bool]


@dataclass
class MigrateMsg:
    """A chunk of key-value pairs for one owner rank."""

    pairs: List[Pair]
    #: sequence number used to ack back to the source
    seq: int

    def wire_nbytes(self) -> int:
        """Wire size: header plus every pair's key/value/flags."""
        return 16 + sum(len(k) + len(v) + 9 for k, v, _ in self.pairs)


@dataclass
class PutSyncMsg:
    """One put/delete migrated synchronously (sequential consistency)."""

    key: bytes
    value: bytes
    tombstone: bool
    seq: int

    def wire_nbytes(self) -> int:
        """Wire size of one synchronous put."""
        return 16 + len(self.key) + len(self.value) + 9


@dataclass
class PutSyncBatchMsg:
    """A per-owner batch of synchronous puts (sequential consistency).

    The bulk pipeline's replacement for per-key :class:`PutSyncMsg`
    traffic: every key the batch routes to one owner travels in a
    single message and is acknowledged by a single :class:`AckMsg`.
    """

    pairs: List[Pair]
    seq: int

    def wire_nbytes(self) -> int:
        """Wire size: header plus every pair's key/value/flags."""
        return 16 + sum(len(k) + len(v) + 9 for k, v, _ in self.pairs)


@dataclass
class GetMsg:
    """Remote get request."""

    key: bytes
    requester_group: int
    seq: int
    #: force the owner to return value bytes even within a storage group
    #: (fallback when a shared-SSTable read raced a compaction)
    force_data: bool = False

    def wire_nbytes(self) -> int:
        """Wire size of a get request (key + routing metadata)."""
        return 24 + len(self.key)


@dataclass
class GetReply:
    """Remote get response."""

    status: int
    seq: int
    value: Optional[bytes] = None
    tombstone: bool = False
    #: on NOT_IN_MEMORY: where the requester should look
    owner_dir: Optional[str] = None
    #: newest flushed SSID at reply time (diagnostic)
    newest_ssid: int = 0

    def wire_nbytes(self) -> int:
        """Wire size of a get reply (value bytes dominate)."""
        return 24 + (len(self.value) if self.value else 0)


@dataclass
class MGetMsg:
    """Batched multi-get request: every key this rank needs from one owner.

    One MGET per owner replaces one :class:`GetMsg` round trip per key;
    the owner answers all keys with a single :class:`MGetReply`.
    """

    keys: List[bytes]
    requester_group: int
    seq: int
    #: force value bytes even within a storage group (compaction-race
    #: fallback, same meaning as :attr:`GetMsg.force_data`)
    force_data: bool = False

    def wire_nbytes(self) -> int:
        """Wire size: routing metadata plus every key."""
        return 24 + sum(len(k) + 4 for k in self.keys)


@dataclass
class MGetReply:
    """Batched multi-get response, parallel to the request's key list."""

    results: List[MGetResult]
    seq: int
    #: set when any key answered NOT_IN_MEMORY: where the requester
    #: should read the shared SSTables (§2.7 shortcut, batched)
    owner_dir: Optional[str] = None
    newest_ssid: int = 0

    def wire_nbytes(self) -> int:
        """Wire size: per-key status bytes plus the value payloads."""
        return 24 + sum(
            9 + (len(v) if v else 0) for _status, v, _tomb in self.results
        )


@dataclass
class FetchTableMsg:
    """Ask a storage-group peer to ship an SSTable's three files.

    Used by the recovery ladder: when a rank's own reads of a table
    fail (transient device fault), a peer that reaches the same storage
    through its own path reads the files and ships the bytes back.
    """

    directory: str
    ssid: int
    seq: int

    def wire_nbytes(self) -> int:
        """Wire size of a fetch request."""
        return 24 + len(self.directory)


@dataclass
class FetchTableReply:
    """The shipped SSTable files, or ``None`` if the peer failed too."""

    blobs: Optional[Dict[str, bytes]]
    seq: int

    def wire_nbytes(self) -> int:
        """Wire size: the three shipped files dominate."""
        blobs = self.blobs or {}
        return 16 + sum(len(b) for b in blobs.values())


@dataclass
class AckMsg:
    """Migration acknowledgement (ack comm)."""

    seq: int

    def wire_nbytes(self) -> int:
        """Wire size of an acknowledgement."""
        return 16


@dataclass
class ReplicaPutBatchMsg:
    """Replicated put/delete fan-out to one replica-group member.

    Carries the writer's ``(epoch, dead)`` membership stamp; a receiver
    whose view is newer — or that holds the sender dead — rejects the
    batch deterministically with ``applied=False`` so the writer can
    re-route against the current group.
    """

    pairs: List[Pair]
    seq: int
    epoch: int
    dead: Tuple[int, ...] = ()

    def wire_nbytes(self) -> int:
        """Wire size: header + membership stamp + every pair."""
        return 24 + 4 * len(self.dead) + sum(
            len(k) + len(v) + 9 for k, v, _ in self.pairs
        )


@dataclass
class HeartbeatMsg:
    """Failure-detector ping, also the carrier of membership gossip.

    ``ping=True`` requests a pong (a :class:`ReplicaAckMsg` on the ack
    comm's heartbeat tag); ``ping=False`` is pure gossip.
    """

    epoch: int
    dead: Tuple[int, ...] = ()
    ping: bool = True

    def wire_nbytes(self) -> int:
        """Wire size of a heartbeat."""
        return 24 + 4 * len(self.dead)


@dataclass
class ReplicaSyncMsg:
    """Re-replication push: part of a dead rank's key range, shipped by
    the new acting primary to a group member that lacks it.  Applied
    under the same seq-dedup as every other mutation and acknowledged
    with a :class:`ReplicaAckMsg` on the rsp comm."""

    pairs: List[Pair]
    seq: int
    epoch: int
    dead: Tuple[int, ...] = ()

    def wire_nbytes(self) -> int:
        """Wire size: header + membership stamp + every pair."""
        return 24 + 4 * len(self.dead) + sum(
            len(k) + len(v) + 9 for k, v, _ in self.pairs
        )


@dataclass
class ReplicaAckMsg:
    """Replication acknowledgement: replica puts (ack comm), heartbeat
    pongs (ack comm, heartbeat tag), and re-replication pushes (rsp
    comm).  Always carries the replier's membership stamp so liveness
    and epoch news piggyback on every exchange; ``applied=False`` means
    the message was rejected as stale and must be re-routed."""

    seq: int
    epoch: int
    dead: Tuple[int, ...] = ()
    applied: bool = True

    def wire_nbytes(self) -> int:
        """Wire size of a replication acknowledgement."""
        return 24 + 4 * len(self.dead)


@dataclass
class IndexPullMsg:
    """Ask an owner for its current index view and metadata bundles.

    ``have`` lists the ssids whose bundles the requester already caches
    for this owner, so an unchanged bundle is never re-shipped — after a
    flush only the new table's metadata travels.  Carries the puller's
    ``(epoch, dead)`` membership stamp like every other index-plane
    message, so epoch news reaches the owner on every pull.
    """

    have: Tuple[int, ...]
    seq: int
    epoch: int = 0
    dead: Tuple[int, ...] = ()

    def wire_nbytes(self) -> int:
        """Wire size of a pull request (ssid list + stamp + header)."""
        return 24 + 4 * len(self.have) + 4 * len(self.dead)


@dataclass
class IndexPullReply:
    """The owner's index view: table set, flags, and missing bundles.

    ``ssids`` is the authoritative table set at reply time (the value a
    requester's one-sided directory listings must match before trusting
    the view); ``mem_clean`` is False when the owner's local MemTable
    holds unflushed pairs a direct read could not see;
    ``quarantine_free`` is False while any of the owner's key range is
    quarantined.  ``bundles`` maps ssid → encoded metadata bundle for
    every table the requester reported missing.  Carries the owner's
    ``(epoch, dead)`` membership stamp like every replication reply.
    """

    owner_dir: str
    newest_ssid: int
    ssids: Tuple[int, ...]
    bundles: Dict[int, bytes]
    mem_clean: bool
    quarantine_free: bool
    seq: int
    epoch: int = 0
    dead: Tuple[int, ...] = ()

    def wire_nbytes(self) -> int:
        """Wire size: the shipped bundles dominate."""
        return (32 + len(self.owner_dir) + 4 * len(self.ssids)
                + 4 * len(self.dead)
                + sum(8 + len(b) for b in self.bundles.values()))


@dataclass
class IndexPublishMsg:
    """Owner's eager push of its index view to a replica-group member.

    Same payload as :class:`IndexPullReply` but unsolicited and
    unacknowledged: installation is idempotent and a dropped publish
    only costs the receiver a lazy re-pull.  The receiver rejects a
    publish whose membership stamp is stale (dead sender or old epoch).
    """

    owner_dir: str
    newest_ssid: int
    ssids: Tuple[int, ...]
    bundles: Dict[int, bytes]
    mem_clean: bool
    quarantine_free: bool
    seq: int
    epoch: int = 0
    dead: Tuple[int, ...] = ()

    def wire_nbytes(self) -> int:
        """Wire size: the shipped bundles dominate."""
        return (32 + len(self.owner_dir) + 4 * len(self.ssids)
                + 4 * len(self.dead)
                + sum(8 + len(b) for b in self.bundles.values()))


@dataclass
class StopMsg:
    """Shut the handler thread down (database close)."""

    def wire_nbytes(self) -> int:
        """Wire size of the shutdown sentinel."""
        return 8


#: Stable wire tag per message class (pkvlint R003).  Request classes
#: reuse their dispatch constants; replies get the 100+ block.  A tag,
#: once assigned, must never change or be reused: checkpoint manifests
#: and fault plans written by old runs identify messages by these.
WIRE_TAGS: Dict[str, int] = {
    "MigrateMsg": MIGRATE,
    "PutSyncMsg": PUT_SYNC,
    "PutSyncBatchMsg": PUT_SYNC_BATCH,
    "GetMsg": GET,
    "MGetMsg": MGET,
    "FetchTableMsg": FETCH_TABLE,
    "StopMsg": STOP,
    "ReplicaPutBatchMsg": REPLICA_PUT,
    "HeartbeatMsg": HEARTBEAT,
    "ReplicaSyncMsg": REPLICA_SYNC,
    "IndexPullMsg": INDEX_PULL,
    "IndexPublishMsg": INDEX_PUBLISH,
    "GetReply": 100,
    "MGetReply": 101,
    "FetchTableReply": 102,
    "AckMsg": 103,
    "ReplicaAckMsg": 104,
    "IndexPullReply": 105,
}
