"""Asynchronous completion events (``papyruskv_event_t``).

``papyruskv_checkpoint``/``restart``/``destroy`` return an event handle
that ``papyruskv_wait`` blocks on.  In the virtual-time model the
asynchronous work has a known completion timestamp on a background
timeline; waiting advances the caller's clock to that timestamp (or is
a no-op if the caller's timeline already passed it — the overlap the
paper's asynchrony buys).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simtime.clock import VirtualClock


class Event:
    """Completion handle for an asynchronous PapyrusKV operation."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._done_time: Optional[float] = None
        self._callback: Optional[Callable[[], None]] = None

    def complete_at(self, t: float) -> "Event":
        """Record the virtual completion time; returns self for chaining."""
        self._done_time = t
        return self

    def on_wait(self, fn: Callable[[], None]) -> "Event":
        """Register work to run when the event is first waited on."""
        self._callback = fn
        return self

    @property
    def completed(self) -> bool:
        return self._done_time is not None

    @property
    def done_time(self) -> float:
        if self._done_time is None:
            raise RuntimeError(f"event {self.label!r} has no completion time")
        return self._done_time

    def wait(self, clock: VirtualClock) -> float:
        """Block (virtually) until completion; returns the clock time."""
        if self._callback is not None:
            cb, self._callback = self._callback, None
            cb()
        if self._done_time is None:
            raise RuntimeError(f"event {self.label!r} never completed")
        return clock.advance_to(self._done_time)
