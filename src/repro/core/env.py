"""The PapyrusKV execution environment (``papyruskv_init``/``finalize``).

One :class:`Papyrus` object exists per rank.  It owns the private
communicators, the repository selection (NVM vs. parallel FS), the
registry of open databases, and the signal primitives used to order
synchronization points under sequential consistency (§3.1).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple

from repro.config import Options
from repro.core.db import Database
from repro.core.events import Event
from repro.errors import InvalidOptionError, NotInitializedError
from repro.mpi.launcher import RankContext

_SIG_TAG_BASE = 1000


class Papyrus:
    """Per-rank PapyrusKV environment.

    Collective constructor: every rank of the SPMD program must create
    it at the same point (it duplicates communicators).

    Parameters
    ----------
    ctx: the rank's :class:`~repro.mpi.launcher.RankContext`.
    repository: default storage for databases — ``"nvm"`` (node NVMe /
        burst buffer, the paper's ``PAPYRUSKV_REPOSITORY`` on NVM) or
        ``"lustre"`` (the parallel file system).
    """

    def __init__(self, ctx: RankContext, repository: str = "nvm") -> None:
        if repository not in ("nvm", "lustre"):
            raise InvalidOptionError(
                f"repository must be 'nvm' or 'lustre', got {repository!r}"
            )
        self.ctx = ctx
        self.repository = repository
        self.rank = ctx.world_rank
        self.nranks = ctx.nranks
        self._sig_comm = ctx.comm.dup()
        self._dbs: Dict[str, Database] = {}
        self._finalized = False

    # -------------------------------------------------------------- database
    def open(self, name: str, options: Optional[Options] = None) -> Database:
        """Collectively open or create database ``name``."""
        self._check_live()
        if not name or "/" in name:
            raise InvalidOptionError(f"bad database name {name!r}")
        if name in self._dbs:
            raise InvalidOptionError(f"database {name!r} already open")
        options = options or Options()
        if options.repository is None:
            options = options.with_(repository=self.repository)
        srv = self.ctx.comm.dup()
        rsp = self.ctx.comm.dup()
        ack = self.ctx.comm.dup()
        coll = self.ctx.comm.dup()
        machine = self.ctx.machine
        store = (
            machine.nvm_store(self.rank)
            if options.repository == "nvm" else machine.lustre_store()
        )
        db = Database(self, name, options, srv, rsp, ack, coll, store)
        meta = db.read_meta()
        if meta is not None and meta.get("nranks") != self.nranks:
            raise InvalidOptionError(
                f"database {name!r} was created with {meta.get('nranks')} "
                f"ranks; reopen with the same rank count or use restart "
                f"with redistribution"
            )
        if meta is None and self.rank == 0:
            db.write_meta()
        coll.barrier()
        db._start_handler()
        coll.barrier()
        self._dbs[name] = db
        return db

    def restart(self, path: str, name: str,
                options: Optional[Options] = None,
                force_redistribute: bool = False) -> Tuple[Database, Event]:
        """Collectively revert ``name`` from a snapshot (§4.2)."""
        self._check_live()
        from repro.core.checkpoint import restart

        return restart(self, path, name, options, force_redistribute)

    def _forget(self, name: str) -> None:
        self._dbs.pop(name, None)

    @property
    def open_databases(self) -> Sequence[str]:
        return tuple(self._dbs)

    # --------------------------------------------------------------- signals
    def signal_notify(self, signum: int, ranks: Sequence[int]) -> None:
        """Send signal ``signum`` to ``ranks`` (``papyruskv_signal_notify``)."""
        self._check_live()
        for r in ranks:
            self._sig_comm.send(signum, r, tag=_SIG_TAG_BASE + signum)

    def signal_wait(self, signum: int, ranks: Sequence[int]) -> None:
        """Block until ``signum`` arrives from every rank in ``ranks``."""
        self._check_live()
        for r in ranks:
            got = self._sig_comm.recv(source=r, tag=_SIG_TAG_BASE + signum)
            assert got == signum

    # -------------------------------------------------------------- lifetime
    def finalize(self) -> None:
        """Collectively close all open databases and tear down."""
        if self._finalized:
            return
        for name in list(self._dbs):
            db = self._dbs.get(name)
            if db is not None and not db._closed:
                db.close()
        self.ctx.comm.barrier()
        self._finalized = True

    def _check_live(self) -> None:
        if self._finalized:
            raise NotInitializedError("Papyrus environment was finalized")

    def __enter__(self) -> "Papyrus":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()
        else:
            # a rank is failing: collective teardown would hang against
            # peers that are not failing — tear down locally and let the
            # launcher abort the run
            self._finalized = True
