"""PapyrusKV core: the paper's primary contribution.

The public entry points are :class:`~repro.core.env.Papyrus` (the
per-rank execution environment, ``papyruskv_init``/``finalize``),
:class:`~repro.core.db.Database` (the object API), and
:mod:`repro.core.api` (the C-style functional API returning error codes).
"""

from repro.core.db import Database, GetResult
from repro.core.env import Papyrus
from repro.core.events import Event
from repro.core.memtable import Entry, MemTable

__all__ = ["Database", "Entry", "Event", "GetResult", "MemTable", "Papyrus"]
