"""Timed shared resources: devices, links, and background workers.

A :class:`TimedResource` serializes virtual-time access the way a real
device serializes DMA: an operation arriving at time ``t`` starts at
``max(t, available)`` and completes ``latency + bytes/bandwidth`` later.
When 20 ranks of a Summitdev node hammer one NVMe, their aggregate
throughput saturates at the device bandwidth — exactly the effect the
paper's Figure 6 measures.  Because work executes eagerly while being
*charged* at virtual request times, the device also remembers idle
windows left behind its horizon by far-future requests, and serves a
later call inside one when its request time fits — service order
follows virtual arrival time, not Python call order.

A :class:`StripedResource` models Lustre OSTs and Cori burst-buffer
nodes: a transfer is split across ``nstripes`` member resources and
completes when the slowest stripe does, which is why striped stores win
at large transfer sizes in Figure 6.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List


@dataclass
class TimedResource:
    """A bandwidth/latency resource with an availability horizon.

    Parameters
    ----------
    name: diagnostic label.
    latency_s: fixed per-operation latency in seconds.
    bandwidth_Bps: sustained bandwidth in bytes/second.
    """

    name: str
    latency_s: float
    bandwidth_Bps: float
    available: float = 0.0
    busy_time: float = 0.0
    ops: int = 0
    bytes_moved: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    #: idle windows left behind the horizon by operations that were
    #: requested beyond it; later requests may be served inside one
    _free: List[List[float]] = field(default_factory=list, repr=False)

    #: bound on remembered idle windows (oldest dropped first)
    MAX_FREE_WINDOWS = 64

    def service_time(self, nbytes: int) -> float:
        """Duration of one operation of ``nbytes`` (no queueing)."""
        return self.latency_s + (nbytes / self.bandwidth_Bps if nbytes else 0.0)

    def _reserve(self, t_request: float, duration: float) -> float:
        """Pick a start time for an exclusive operation (lock held).

        Work executes eagerly here, so operations arrive in *call*
        order, not virtual-time order: a background job scheduled for
        the far future must not make the device look busy in between.
        When a request lands beyond the horizon the idle window behind
        it is remembered, and a later call whose request time falls
        inside such a window is served there — like a real device, which
        orders service by arrival time, not by who asked first.
        """
        for i, win in enumerate(self._free):
            start = max(win[0], t_request)
            if start + duration <= win[1]:
                rest = []
                if start > win[0]:
                    rest.append([win[0], start])
                if start + duration < win[1]:
                    rest.append([start + duration, win[1]])
                self._free[i:i + 1] = rest
                return start
        start = max(t_request, self.available)
        if start > self.available:
            self._free.append([self.available, start])
            if len(self._free) > self.MAX_FREE_WINDOWS:
                self._free.pop(0)
        self.available = start + duration
        return start

    def access(self, t_request: float, nbytes: int) -> float:
        """Reserve the resource for an operation; return completion time."""
        duration = self.service_time(nbytes)
        with self._lock:
            start = self._reserve(t_request, duration)
            end = start + duration
            self.busy_time += duration
            self.ops += 1
            self.bytes_moved += nbytes
            return end

    def access_concurrent(self, t_request: float, nbytes: int) -> float:
        """An operation that shares the resource without exclusive queueing.

        Used for read paths on parallel file systems where many readers
        proceed concurrently and only bandwidth matters statistically: the
        operation takes its service time but only pushes the availability
        horizon by the *bandwidth share* it consumed.
        """
        duration = self.service_time(nbytes)
        with self._lock:
            start = max(t_request, self.available)
            end = start + duration
            # push the horizon by the transfer component only
            self.available = max(self.available, start) + (
                nbytes / self.bandwidth_Bps if nbytes else 0.0
            )
            self.busy_time += duration
            self.ops += 1
            self.bytes_moved += nbytes
            return end

    def reset(self) -> None:
        """Zero the horizon and counters (benchmark phase boundaries)."""
        with self._lock:
            self.available = 0.0
            self.busy_time = 0.0
            self.ops = 0
            self.bytes_moved = 0
            self._free.clear()


class StripedResource:
    """A file-system striped across ``nstripes`` member resources.

    A transfer of N bytes is divided into N/nstripes chunks written in
    parallel; completion is the max across stripes.  Small transfers pay
    one stripe's latency; large transfers enjoy aggregate bandwidth.
    """

    def __init__(
        self,
        name: str,
        nstripes: int,
        stripe_latency_s: float,
        stripe_bandwidth_Bps: float,
    ) -> None:
        if nstripes <= 0:
            raise ValueError("nstripes must be positive")
        self.name = name
        self.nstripes = nstripes
        self.stripes: List[TimedResource] = [
            TimedResource(f"{name}[{i}]", stripe_latency_s, stripe_bandwidth_Bps)
            for i in range(nstripes)
        ]
        self._rr = 0
        self._lock = threading.Lock()

    def service_time(self, nbytes: int) -> float:
        """Uncontended duration of a striped transfer of ``nbytes``."""
        per_stripe = -(-nbytes // self.nstripes) if nbytes else 0
        return self.stripes[0].latency_s + (
            per_stripe / self.stripes[0].bandwidth_Bps if per_stripe else 0.0
        )

    def access(self, t_request: float, nbytes: int) -> float:
        """Stripe a transfer across all members; return completion time."""
        per_stripe = -(-nbytes // self.nstripes) if nbytes else 0
        end = t_request
        for stripe in self.stripes:
            end = max(end, stripe.access(t_request, per_stripe))
        return end

    def access_one(self, t_request: float, nbytes: int) -> float:
        """Route a small un-striped op to one stripe round-robin (metadata)."""
        with self._lock:
            idx = self._rr
            self._rr = (self._rr + 1) % self.nstripes
        return self.stripes[idx].access(t_request, nbytes)

    @property
    def ops(self) -> int:
        return sum(s.ops for s in self.stripes)

    @property
    def bytes_moved(self) -> int:
        return sum(s.bytes_moved for s in self.stripes)

    def reset(self) -> None:
        """Reset every member stripe."""
        for s in self.stripes:
            s.reset()


class BackgroundWorker:
    """A virtual background thread timeline (compaction thread, dispatcher).

    The paper overlaps flushing/migration with the application by running
    them on background threads.  We execute the *work* eagerly on the
    caller (keeping data structures simple) but charge its *time* here, so
    the main timeline only blocks when the queue back-pressures.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.available = 0.0
        self.busy_time = 0.0
        self.jobs = 0
        self._lock = threading.Lock()

    def schedule(self, t_enqueue: float, job) -> float:
        """Run ``job(start_time) -> end_time`` serialized on this worker.

        The job executes eagerly (real work, e.g. writing SSTable files)
        but its virtual time occupies this background timeline, so it
        overlaps the caller's main timeline.
        """
        with self._lock:
            start = max(t_enqueue, self.available)
            end = job(start)
            if end < start:
                raise ValueError("job returned end < start")
            self.available = end
            self.busy_time += end - start
            self.jobs += 1
            return end

    def submit(self, t_enqueue: float, duration: float) -> float:
        """Schedule a job of ``duration``; return its completion time."""
        if duration < 0:
            raise ValueError("negative duration")
        with self._lock:
            start = max(t_enqueue, self.available)
            end = start + duration
            self.available = end
            self.busy_time += duration
            self.jobs += 1
            return end

    def idle_until(self, t: float) -> None:
        """Force the worker idle until ``t`` (e.g. after a barrier)."""
        with self._lock:
            if t > self.available:
                self.available = t

    def reset(self) -> None:
        """Zero the worker timeline (benchmark phase boundaries)."""
        with self._lock:
            self.available = 0.0
            self.busy_time = 0.0
            self.jobs = 0
