"""Virtual-time performance model.

Real wall-clock timing in Python cannot reproduce the paper's device
contrasts (NVMe vs. SSD vs. burst buffer vs. Lustre), so every rank in
the simulated SPMD runtime carries a :class:`~repro.simtime.clock.VirtualClock`
and all storage/network operations charge costs taken from calibrated
device and network profiles.  See DESIGN.md §5.
"""

from repro.simtime.clock import VirtualClock, current_clock, set_current_clock
from repro.simtime.resources import StripedResource, TimedResource
from repro.simtime.profiles import (
    CORI,
    DeviceProfile,
    NetworkProfile,
    STAMPEDE,
    SUMMITDEV,
    SystemProfile,
    system_by_name,
)

__all__ = [
    "CORI",
    "DeviceProfile",
    "NetworkProfile",
    "STAMPEDE",
    "SUMMITDEV",
    "StripedResource",
    "SystemProfile",
    "TimedResource",
    "VirtualClock",
    "current_clock",
    "set_current_clock",
    "system_by_name",
]
