"""Per-rank virtual clocks.

Each simulated MPI rank thread owns a :class:`VirtualClock`.  Compute,
memory, storage, and network costs advance it; communication events merge
clocks (receive time is the max of local readiness and message arrival).
A thread-local registry lets deep library code find "its" clock without
threading it through every call.
"""

from __future__ import annotations

import threading
from typing import Optional

_tls = threading.local()


class VirtualClock:
    """A monotonically advancing virtual timestamp in seconds."""

    __slots__ = ("_now", "_lock", "label")

    def __init__(self, start: float = 0.0, label: str = "") -> None:
        self._now = float(start)
        self._lock = threading.Lock()
        self.label = label

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by ``dt`` seconds (must be non-negative); return new time."""
        if dt < 0:
            raise ValueError(f"negative time advance: {dt}")
        with self._lock:
            self._now += dt
            return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to at least ``t``; never backwards."""
        with self._lock:
            if t > self._now:
                self._now = t
            return self._now

    def reset(self, t: float = 0.0) -> None:
        """Rewind to ``t`` (test/benchmark setup only)."""
        with self._lock:
            self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualClock {self.label or id(self):} t={self._now:.6f}>"


def set_current_clock(clock: Optional[VirtualClock]) -> None:
    """Bind ``clock`` to the calling thread (None unbinds)."""
    _tls.clock = clock


def current_clock() -> VirtualClock:
    """Return the calling thread's clock, creating a detached one if unbound.

    Library code outside an SPMD run (unit tests poking at a component)
    still works: it gets a private free-running clock.
    """
    clock = getattr(_tls, "clock", None)
    if clock is None:
        clock = VirtualClock(label="detached")
        _tls.clock = clock
    return clock
