"""Device, network, and system profiles (paper Table 2).

The three evaluation systems — OLCF Summitdev, TACC Stampede (KNL), and
NERSC Cori (Haswell) — are modelled by the parameters that drive the
paper's measured contrasts:

* Summitdev: local NVM architecture, one 800 GB NVMe per node, 20 ranks
  per node, EDR InfiniBand.
* Stampede: local NVM architecture, one 112 GB SATA SSD per node,
  68 ranks per node, Omni-Path.
* Cori: dedicated NVM architecture (burst-buffer nodes striped over the
  Aries network), 32 ranks per node.

Numbers are order-of-magnitude calibrations from public device data, not
attempts to match the paper's absolute figures (EXPERIMENTS.md records
the resulting paper-vs-measured shapes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class DeviceProfile:
    """Latency/bandwidth parameters for one storage device class."""

    name: str
    read_latency_s: float
    write_latency_s: float
    read_bandwidth_Bps: float
    write_bandwidth_Bps: float
    #: number of stripes for striped stores (1 = a plain local device)
    nstripes: int = 1
    #: whether the device sits behind the interconnect (burst buffer)
    remote: bool = False


@dataclass(frozen=True)
class NetworkProfile:
    """Interconnect parameters."""

    name: str
    latency_s: float
    bandwidth_Bps: float
    #: extra per-message software overhead on each side (MPI stack)
    sw_overhead_s: float = 5e-7
    #: one-sided (RDMA) per-op latency, used by the UPC DSM baseline
    rdma_latency_s: float = 1.5e-6


@dataclass(frozen=True)
class CPUProfile:
    """Per-operation software costs charged on the main timeline."""

    name: str
    #: fixed cost of one KVS call (hashing, tree descent, bookkeeping)
    kv_op_s: float
    #: DRAM copy bandwidth for staging values into MemTables
    memcpy_Bps: float
    #: DRAM random-access latency component per op
    dram_latency_s: float


@dataclass(frozen=True)
class SystemProfile:
    """One evaluation platform (a Table 2 column)."""

    name: str
    site: str
    ranks_per_node: int
    #: 'local' (node-local NVMe/SSD) or 'dedicated' (burst buffer)
    nvm_arch: str
    nvm: DeviceProfile
    lustre: DeviceProfile
    network: NetworkProfile
    cpu: CPUProfile
    compute_nodes: int = 1
    notes: str = ""

    def node_of_rank(self, rank: int) -> int:
        """Compute node hosting ``rank`` (block distribution)."""
        return rank // self.ranks_per_node

    def nodes_for(self, nranks: int) -> int:
        """Number of compute nodes a run of ``nranks`` occupies."""
        return -(-nranks // self.ranks_per_node)


# --------------------------------------------------------------------- CPUs
_POWER8 = CPUProfile("IBM POWER8 2.0GHz", kv_op_s=1.2e-6, memcpy_Bps=18 * GB,
                     dram_latency_s=9e-8)
_KNL = CPUProfile("Intel Xeon Phi 7250 1.4GHz", kv_op_s=3.0e-6,
                  memcpy_Bps=8 * GB, dram_latency_s=1.5e-7)
_HASWELL = CPUProfile("Intel Xeon E5-2698 2.3GHz", kv_op_s=1.0e-6,
                      memcpy_Bps=15 * GB, dram_latency_s=8e-8)

# ------------------------------------------------------------------ networks
_EDR_IB = NetworkProfile("Mellanox InfiniBand EDR", latency_s=1.0e-6,
                         bandwidth_Bps=12.0 * GB)
_OMNIPATH = NetworkProfile("Intel Omni-Path", latency_s=1.1e-6,
                           bandwidth_Bps=11.0 * GB)
_ARIES = NetworkProfile("Cray Aries Dragonfly", latency_s=1.3e-6,
                        bandwidth_Bps=10.0 * GB)

# ------------------------------------------------------------------- devices
_SUMMITDEV_NVME = DeviceProfile(
    "800GB NVMe (node-local)",
    read_latency_s=8e-5, write_latency_s=3e-5,
    read_bandwidth_Bps=3.0 * GB, write_bandwidth_Bps=2.0 * GB,
)
_STAMPEDE_SSD = DeviceProfile(
    "112GB SATA SSD (node-local)",
    read_latency_s=1.2e-4, write_latency_s=8e-5,
    read_bandwidth_Bps=0.5 * GB, write_bandwidth_Bps=0.35 * GB,
)
_CORI_BB = DeviceProfile(
    "Burst buffer (striped SSD, dedicated nodes)",
    read_latency_s=2.5e-4, write_latency_s=2.5e-4,
    read_bandwidth_Bps=1.6 * GB, write_bandwidth_Bps=1.6 * GB,
    nstripes=8, remote=True,
)
_LUSTRE = DeviceProfile(
    "Lustre (striped over OSTs)",
    read_latency_s=4e-3, write_latency_s=2.5e-3,
    read_bandwidth_Bps=0.8 * GB, write_bandwidth_Bps=0.8 * GB,
    nstripes=4, remote=True,
)

# ------------------------------------------------------------------- systems
SUMMITDEV = SystemProfile(
    name="summitdev", site="OLCF", ranks_per_node=20, nvm_arch="local",
    nvm=_SUMMITDEV_NVME, lustre=_LUSTRE, network=_EDR_IB, cpu=_POWER8,
    compute_nodes=54,
    notes="2x IBM POWER8, 256GB DDR4, node-local 800GB NVMe",
)
STAMPEDE = SystemProfile(
    name="stampede", site="TACC", ranks_per_node=68, nvm_arch="local",
    nvm=_STAMPEDE_SSD, lustre=_LUSTRE, network=_OMNIPATH, cpu=_KNL,
    compute_nodes=508,
    notes="Xeon Phi 7250 (KNL), 96GB DDR4, node-local 112GB SSD",
)
CORI = SystemProfile(
    name="cori", site="NERSC", ranks_per_node=32, nvm_arch="dedicated",
    nvm=_CORI_BB, lustre=_LUSTRE, network=_ARIES, cpu=_HASWELL,
    compute_nodes=2004,
    notes="2x Haswell, 128GB DDR4, burst-buffer SSD nodes (1.8PB aggregate)",
)

_SYSTEMS: Dict[str, SystemProfile] = {
    s.name: s for s in (SUMMITDEV, STAMPEDE, CORI)
}


def system_by_name(name: str) -> SystemProfile:
    """Look up a system profile by its lowercase name."""
    try:
        return _SYSTEMS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; available: {sorted(_SYSTEMS)}"
        ) from None


def all_systems() -> Dict[str, SystemProfile]:
    """All modelled platforms by name."""
    return dict(_SYSTEMS)
