"""repro — a Python reproduction of PapyrusKV (SC'17).

PapyrusKV is a parallel embedded key-value store for distributed HPC
architectures with node-local or dedicated NVM (Kim, Lee, Vetter,
SC'17).  This package implements the full system on a simulated
substrate: a threaded SPMD "MPI" runtime with virtual-time performance
modelling of the paper's three evaluation platforms.

Quickstart::

    from repro import Options, Papyrus, spmd_run

    def app(ctx):
        with Papyrus(ctx) as env:
            db = env.open("mydb")
            db.put(b"k", b"v")
            db.barrier()
            assert db.get(b"k") == b"v"
            db.close()

    spmd_run(4, app)
"""

from repro import config
from repro.config import (
    MEMTABLE,
    Options,
    RDONLY,
    RDWR,
    RELAXED,
    SEQUENTIAL,
    SSTABLE,
    WRONLY,
)
from repro.core.db import Database, GetResult
from repro.core.env import Papyrus
from repro.core.events import Event
from repro.errors import (
    CorruptionError,
    ErrorCode,
    KeyNotFoundError,
    PapyrusError,
    ProtectionError,
    RemoteTimeoutError,
    TornWriteError,
)
from repro.faults import FaultPlan
from repro.mpi.launcher import RankContext, spmd_run
from repro.simtime.profiles import CORI, STAMPEDE, SUMMITDEV, system_by_name

__version__ = "1.0.0"

__all__ = [
    "CORI",
    "CorruptionError",
    "Database",
    "ErrorCode",
    "Event",
    "FaultPlan",
    "GetResult",
    "KeyNotFoundError",
    "MEMTABLE",
    "Options",
    "Papyrus",
    "PapyrusError",
    "ProtectionError",
    "RemoteTimeoutError",
    "TornWriteError",
    "RDONLY",
    "RDWR",
    "RELAXED",
    "RankContext",
    "SEQUENTIAL",
    "SSTABLE",
    "STAMPEDE",
    "SUMMITDEV",
    "WRONLY",
    "config",
    "spmd_run",
    "system_by_name",
]
