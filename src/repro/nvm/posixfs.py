"""Costed POSIX file access.

"The PapyrusKV runtime accesses the NVM storages through the standard
POSIX file system interface" (paper §2.3).  :class:`PosixStore` performs
real file I/O under a base directory while charging virtual time to a
timed device resource.  Each call returns the *virtual completion time*
so callers can charge it to the right timeline (main rank clock or the
background compaction worker).

Durability discipline: every :meth:`write` (and each file of a
:meth:`bulk_write`) goes through a unique tmp file, ``fsync``, atomic
``os.replace``, and a directory ``fsync`` — a crash can only ever leave
the old file or the new file, never a torn hybrid.  A non-``None``
``faults`` attribute (a :class:`repro.faults.FaultPlan`) is consulted
around these steps; with faults off the hot path pays one attribute
check.
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import List, Optional, Tuple, Union

from repro.errors import StorageError
from repro.simtime.resources import StripedResource, TimedResource

Device = Union[TimedResource, StripedResource]

#: process-wide counter making concurrent tmp files collision-free
_TMP_IDS = itertools.count()


def _fsync_dir(path: str) -> None:
    """Flush a directory's metadata (rename durability); best effort."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class PosixStore:
    """File operations on one (simulated) storage device.

    Parameters
    ----------
    root: directory all paths are resolved under.
    device: the timed resource charged for data transfer.
    extra_latency_s: added per operation (e.g. interconnect hop for a
        burst buffer or Lustre reached through the network).
    """

    def __init__(self, root: str, device: Device,
                 extra_latency_s: float = 0.0,
                 read_device: Optional[Device] = None) -> None:
        self.root = root
        self.device = device
        self.read_device = read_device if read_device is not None else device
        self.extra_latency_s = extra_latency_s
        self.faults = None  # Optional[repro.faults.FaultPlan]
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ paths
    def path(self, *parts: str) -> str:
        """Absolute path under the store root (escape-checked)."""
        p = os.path.join(self.root, *parts)
        ap = os.path.abspath(p)
        if not ap.startswith(os.path.abspath(self.root)):
            raise StorageError(f"path escapes store root: {p}")
        return p

    def makedirs(self, *parts: str) -> str:
        """Create (if needed) and return a directory under the root."""
        p = self.path(*parts)
        os.makedirs(p, exist_ok=True)
        return p

    # ------------------------------------------------------------------ write
    def _atomic_write(self, relpath: str, data: bytes) -> None:
        """tmp file + fsync + atomic rename + dir fsync, with crash sites."""
        plan = self.faults
        p = self.path(relpath)
        os.makedirs(os.path.dirname(p), exist_ok=True)
        if plan is not None:
            plan.at_site(f"posix.write:{relpath}")
            data = plan.filter_write(relpath, data)
        tmp = f"{p}.tmp{next(_TMP_IDS)}"
        try:
            with open(tmp, "wb") as f:
                f.write(data)
                f.flush()
                os.fsync(f.fileno())
            if plan is not None:
                plan.at_site(f"posix.rename:{relpath}")
            os.replace(tmp, p)
            _fsync_dir(os.path.dirname(p))
        except OSError as exc:
            raise StorageError(str(exc)) from exc
        finally:
            if os.path.exists(tmp):
                try:
                    os.remove(tmp)
                except OSError:
                    pass
        if plan is not None:
            plan.at_site(f"posix.synced:{relpath}")

    def write(self, relpath: str, data: bytes, t: float) -> float:
        """Create/overwrite a file atomically and durably; returns the
        virtual completion time."""
        self._atomic_write(relpath, data)
        return self._charge_write(t, len(data))

    def append(self, relpath: str, data: bytes, t: float) -> float:
        """Append to a file durably; returns the virtual completion time.

        Appends cannot go through the tmp+rename path (the old bytes
        must stay in place), so durability comes from fsyncing the file
        itself: a crash can truncate the tail to the last synced
        length, never publish bytes the caller was told are durable.
        """
        p = self.path(relpath)
        os.makedirs(os.path.dirname(p), exist_ok=True)
        try:
            with open(p, "ab") as f:
                f.write(data)
                f.flush()
                os.fsync(f.fileno())
        except OSError as exc:
            raise StorageError(str(exc)) from exc
        return self._charge_write(t, len(data))

    # ------------------------------------------------------------------- read
    def read(self, relpath: str, t: float, offset: int = 0,
             length: Optional[int] = None) -> Tuple[bytes, float]:
        """Read (part of) a file; returns (data, virtual completion time).

        A bounded read models one random-access probe: it pays the
        device's read latency plus the transfer of just those bytes —
        the property that makes SSTable binary search profitable on NVM.
        """
        if self.faults is not None:
            self.faults.check_read(relpath)
        p = self.path(relpath)
        try:
            with open(p, "rb") as f:
                if offset:
                    f.seek(offset)
                data = f.read() if length is None else f.read(length)
        except OSError as exc:
            raise StorageError(str(exc)) from exc
        return data, self._charge_read(t, len(data))

    def read_spans(self, relpath: str, spans: List[Tuple[int, int]],
                   t: float) -> Tuple[List[bytes], float]:
        """Read several ``(offset, length)`` spans of one file as one burst.

        A block-cache fill touches a handful of adjacent 64KB blocks;
        issuing them as one operation pays the device's read latency
        once plus the aggregate bytes, like a vectored ``preadv`` —
        rather than a full latency charge per block.
        """
        if self.faults is not None:
            self.faults.check_read(relpath)
        p = self.path(relpath)
        out: List[bytes] = []
        total = 0
        try:
            with open(p, "rb") as f:
                for offset, length in spans:
                    f.seek(offset)
                    data = f.read(length)
                    out.append(data)
                    total += len(data)
        except OSError as exc:
            raise StorageError(str(exc)) from exc
        return out, self._charge_read(t, total)

    def size(self, relpath: str) -> int:
        """File size in bytes (StorageError if absent)."""
        try:
            return os.path.getsize(self.path(relpath))
        except OSError as exc:
            raise StorageError(str(exc)) from exc

    def exists(self, relpath: str) -> bool:
        """Whether the path exists under the root."""
        return os.path.exists(self.path(relpath))

    def listdir(self, relpath: str = "") -> List[str]:
        """Sorted directory listing ([] if the directory is absent)."""
        p = self.path(relpath) if relpath else self.root
        try:
            return sorted(os.listdir(p))
        except FileNotFoundError:
            return []

    def rename(self, old_rel: str, new_rel: str, t: float) -> float:
        """Atomically rename a file (quarantine); returns completion time."""
        try:
            # the source file is already durable (written by _atomic_write,
            # which fsyncs before publishing); this rename only moves it
            # aside for quarantine, so fsync-before-rename does not apply
            os.replace(  # pkvlint: disable=R002
                self.path(old_rel), self.path(new_rel))
            _fsync_dir(os.path.dirname(self.path(new_rel)))
        except OSError as exc:
            raise StorageError(str(exc)) from exc
        return self._charge_meta(t)

    def delete(self, relpath: str, t: float) -> float:
        """Remove a file (idempotent); returns the completion time."""
        try:
            os.remove(self.path(relpath))
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise StorageError(str(exc)) from exc
        return self._charge_meta(t)

    def delete_many(self, relpaths: List[str], t: float) -> float:
        """Remove several files as one batched metadata commit.

        Compaction retires a whole round's input tables at once: the
        unlinks share a single metadata round-trip instead of paying a
        full device access per file — per-file charges here serialized
        ahead of foreground flush syncs and dominated the write device
        with zero-byte operations.
        """
        for rel in relpaths:
            try:
                os.remove(self.path(rel))
            except FileNotFoundError:
                pass
            except OSError as exc:
                raise StorageError(str(exc)) from exc
        return self._charge_meta(t)

    def delete_tree(self, relpath: str, t: float) -> float:
        """Remove a directory tree (``papyruskv_destroy``)."""
        import shutil

        p = self.path(relpath)
        n = 1
        if os.path.isdir(p):
            n = sum(len(files) for _, _, files in os.walk(p)) or 1
            shutil.rmtree(p, ignore_errors=True)
        end = t
        for _ in range(n):
            end = self._charge_meta(end)
        return end

    # ------------------------------------------------------------------ bulk
    def bulk_read(self, relpaths, t: float):
        """Stream several files as one bulk transfer (stage-in/out).

        Checkpoint/restart move whole SSTable sets; a staging transfer
        pays one access latency and the aggregate bytes at streaming
        bandwidth, not a metadata round-trip per file.  Returns
        ``({relpath: data}, completion_time)``.
        """
        plan = self.faults
        blobs = {}
        total = 0
        for rel in relpaths:
            if plan is not None:
                plan.check_read(rel)
            p = self.path(rel)
            try:
                with open(p, "rb") as f:
                    blobs[rel] = f.read()
            except OSError as exc:
                raise StorageError(str(exc)) from exc
            total += len(blobs[rel])
        return blobs, self._charge_read(t, total)

    def bulk_write(self, blobs, t: float) -> float:
        """Stream several files out as one bulk transfer.

        Each file still lands via the atomic tmp+fsync+rename path —
        staging performance is a virtual-time property here, durability
        a real one.
        """
        return self.write_ordered(list(blobs.items()), t)

    def write_ordered(self, items: List[Tuple[str, bytes]],
                      t: float) -> float:
        """Write several files *in order* as one batched durable commit.

        The flush pipeline's sync stage lands an SSTable's three files
        (SSData -> SSIndex -> bloom) in one go: each file keeps the
        atomic tmp+fsync+rename discipline and its crash sites, but the
        device is charged once — the write analogue of
        :meth:`read_spans`'s vectored burst — so a pipelined sync pays
        one access latency plus the aggregate bytes.
        """
        total = 0
        for rel, data in items:
            self._atomic_write(rel, data)
            total += len(data)
        return self._charge_write(t, total)

    # ---------------------------------------------------------------- costing
    def _charge_write(self, t: float, nbytes: int) -> float:
        t += self.extra_latency_s
        return self.device.access(t, nbytes)

    def _charge_read(self, t: float, nbytes: int) -> float:
        t += self.extra_latency_s
        dev = self.read_device
        if isinstance(dev, TimedResource):
            # reads on NVM are random-access friendly; don't serialize
            # behind large queued writes as hard as writes do
            return dev.access_concurrent(t, nbytes)
        return dev.access_one(t, nbytes) if nbytes < 64 * 1024 else dev.access(
            t, nbytes
        )

    def _charge_meta(self, t: float) -> float:
        t += self.extra_latency_s
        if isinstance(self.device, StripedResource):
            return self.device.access_one(t, 0)
        return self.device.access(t, 0)
