"""The machine: NVM devices, parallel file system, storage groups.

A :class:`Machine` instantiates the storage fabric of one SPMD run from
a :class:`~repro.simtime.profiles.SystemProfile`:

* local NVM architecture — one :class:`TimedResource` NVMe/SSD per
  compute node, with a per-node directory; the default storage group is
  the node;
* dedicated NVM architecture — one :class:`StripedResource` burst
  buffer shared machine-wide (one directory), the default storage group
  spans all ranks;
* a global Lustre :class:`StripedResource` standing in for the parallel
  file system used by checkpoint/restart.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from typing import Dict, List, Optional

from repro.nvm.posixfs import PosixStore
from repro.simtime.profiles import DeviceProfile, SystemProfile
from repro.simtime.resources import StripedResource, TimedResource


def _make_device(profile: DeviceProfile, name: str, write: bool):
    """Build the timed resource for one device profile."""
    lat = profile.write_latency_s if write else profile.read_latency_s
    bw = profile.write_bandwidth_Bps if write else profile.read_bandwidth_Bps
    if profile.nstripes > 1:
        return StripedResource(name, profile.nstripes, lat, bw)
    return TimedResource(name, lat, bw)


class StorageLayout:
    """Maps ranks to storage groups.

    The paper's artifact exposes ``PAPYRUSKV_GROUP_SIZE``; group ``g`` of
    rank ``r`` is ``r // group_size``.  ``group_size=1`` disables SSTable
    sharing (the "Default" configuration of Figure 8).
    """

    def __init__(self, nranks: int, group_size: int) -> None:
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        self.nranks = nranks
        self.group_size = min(group_size, nranks)

    def group_of(self, rank: int) -> int:
        """Storage group id of ``rank``."""
        return rank // self.group_size

    def ranks_in_group(self, group: int) -> List[int]:
        """All ranks belonging to ``group``."""
        lo = group * self.group_size
        hi = min(lo + self.group_size, self.nranks)
        return list(range(lo, hi))

    @property
    def ngroups(self) -> int:
        return -(-self.nranks // self.group_size)


class Machine:
    """Storage fabric for one simulated run.

    Every rank obtains its NVM store via :meth:`nvm_store` and the
    parallel file system via :meth:`lustre_store`.  Ranks that share an
    NVM device receive :class:`PosixStore` objects rooted at the same
    directory, so storage-group reads of a peer's SSTables are real file
    reads.
    """

    def __init__(self, system: SystemProfile, nranks: int,
                 base_dir: Optional[str] = None) -> None:
        self.system = system
        self.nranks = nranks
        self._own_dir = base_dir is None
        self.base_dir = base_dir or tempfile.mkdtemp(prefix="papyruskv-")
        os.makedirs(self.base_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._nvm_stores: Dict[int, PosixStore] = {}
        self._faults = None  # Optional[repro.faults.FaultPlan]

        nnodes = system.nodes_for(nranks)
        self.nnodes = nnodes
        net_hop = system.network.latency_s

        if system.nvm_arch == "local":
            self._nvm_write = [
                _make_device(system.nvm, f"nvm-node{n}-w", write=True)
                for n in range(nnodes)
            ]
            self._nvm_read = [
                _make_device(system.nvm, f"nvm-node{n}-r", write=False)
                for n in range(nnodes)
            ]
            self._nvm_extra_latency = 0.0
            self.default_group_size = system.ranks_per_node
        elif system.nvm_arch == "dedicated":
            self._nvm_write = [_make_device(system.nvm, "burst-buffer-w", True)]
            self._nvm_read = [_make_device(system.nvm, "burst-buffer-r", False)]
            self._nvm_extra_latency = net_hop if system.nvm.remote else 0.0
            self.default_group_size = nranks
        else:
            raise ValueError(f"unknown nvm_arch {system.nvm_arch!r}")

        self._lustre_write = _make_device(system.lustre, "lustre-w", True)
        self._lustre_read = _make_device(system.lustre, "lustre-r", False)
        self._lustre_extra = net_hop if system.lustre.remote else 0.0

    # ---------------------------------------------------------------- lookup
    def nvm_domain_of_rank(self, rank: int) -> int:
        """Which NVM device/directory serves this rank."""
        if self.system.nvm_arch == "local":
            return self.system.node_of_rank(rank)
        return 0

    def nvm_store(self, rank: int) -> PosixStore:
        """The NVM-backed store visible to ``rank``."""
        domain = self.nvm_domain_of_rank(rank)
        with self._lock:
            store = self._nvm_stores.get(domain)
            if store is None:
                store = PosixStore(
                    os.path.join(self.base_dir, f"nvm{domain}"),
                    self._nvm_write[domain],
                    extra_latency_s=self._nvm_extra_latency,
                    read_device=self._nvm_read[domain],
                )
                store.faults = self._faults
                self._nvm_stores[domain] = store
            return store

    def lustre_store(self) -> PosixStore:
        """The global parallel file system (checkpoint target)."""
        with self._lock:
            if not hasattr(self, "_lustre"):
                self._lustre = PosixStore(
                    os.path.join(self.base_dir, "lustre"),
                    self._lustre_write,
                    extra_latency_s=self._lustre_extra,
                    read_device=self._lustre_read,
                )
                self._lustre.faults = self._faults
            return self._lustre

    def set_faults(self, plan) -> None:
        """Attach a :class:`repro.faults.FaultPlan` (or ``None``) to every
        store this machine has created or will create."""
        with self._lock:
            self._faults = plan
            for store in self._nvm_stores.values():
                store.faults = plan
            if hasattr(self, "_lustre"):
                self._lustre.faults = plan

    def layout(self, group_size: Optional[int] = None) -> StorageLayout:
        """Storage-group layout; defaults to the architecture's natural one."""
        return StorageLayout(self.nranks, group_size or self.default_group_size)

    def shares_nvm(self, rank_a: int, rank_b: int) -> bool:
        """Whether two ranks can read each other's SSTable files at all."""
        return self.nvm_domain_of_rank(rank_a) == self.nvm_domain_of_rank(rank_b)

    # --------------------------------------------------------------- lifetime
    def trim_nvm(self) -> None:
        """Simulate end-of-job NVM trim: all SSTables on NVM disappear."""
        with self._lock:
            stores = list(self._nvm_stores.values())
        for store in stores:
            shutil.rmtree(store.root, ignore_errors=True)
            os.makedirs(store.root, exist_ok=True)

    def reset_timing(self) -> None:
        """Zero all device availability horizons (fresh benchmark phase)."""
        for dev in (*self._nvm_write, *self._nvm_read,
                    self._lustre_write, self._lustre_read):
            dev.reset()

    def close(self) -> None:
        """Remove the backing directory if this Machine created it."""
        if self._own_dir:
            shutil.rmtree(self.base_dir, ignore_errors=True)

    def __enter__(self) -> "Machine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
