"""Simulated distributed NVM storage.

Models the two architectures the paper distinguishes (§2.7):

* **local NVM architecture** (Summitdev, Stampede): one NVMe/SSD per
  compute node, private to that node's ranks; all ranks of a node form a
  storage group.
* **dedicated NVM architecture** (Cori): burst-buffer nodes behind the
  interconnect, striped, visible to every rank; all ranks form one
  storage group.

SSTables are written to real files under a per-run repository directory,
so the POSIX code path is exercised; access *costs* are charged to the
timed device resources.
"""

from repro.nvm.posixfs import PosixStore
from repro.nvm.storage import Machine, StorageLayout

__all__ = ["Machine", "PosixStore", "StorageLayout"]
