"""YCSB-style workloads (extension beyond the paper's microbenchmarks).

The Yahoo! Cloud Serving Benchmark's core workloads are the lingua
franca of KVS evaluation; running them against PapyrusKV exercises the
store under skewed access (Zipfian), read-modify-write cycles, and
insert-heavy churn that the paper's uniform workloads do not.

* A — update heavy: 50% reads / 50% updates, Zipfian
* B — read mostly: 95% reads / 5% updates, Zipfian
* C — read only: 100% reads, Zipfian
* D — read latest: 95% reads / 5% inserts, reads skewed to recent keys
* E — scan heavy: 95% short range scans / 5% inserts, Zipfian start keys
* F — read-modify-write: 50% reads / 50% RMW, Zipfian

Workload E's scans are *local* streamed scans (``db.scan`` bounded by a
drawn length): per-rank operation streams diverge, so a collective scan
would deadlock — and the YCSB-E contract ("next N records from a start
key") is exactly the iterator's ``islice`` shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import islice
from typing import Dict, List, Optional

from repro.config import Options, SEQUENTIAL
from repro.core.env import Papyrus
from repro.mpi.launcher import RankContext
from repro.workloads.generators import rank_seed, value_of_size


class ZipfianGenerator:
    """Zipf-distributed integers in [0, n) (Gray et al.'s rejection-free
    method as used by YCSB)."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 1) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0,1)")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (
            (1.0 - (2.0 / n) ** (1.0 - theta))
            / (1.0 - self._zeta2 / self._zetan)
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        """Draw the next Zipf-distributed index."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.n * (self._eta * u - self._eta + 1.0) ** self._alpha
        )


@dataclass(frozen=True)
class YcsbWorkload:
    """One YCSB core workload definition."""

    name: str
    read_pct: int
    update_pct: int
    insert_pct: int
    rmw_pct: int
    #: "zipfian" or "latest"
    distribution: str = "zipfian"
    #: short range scans (workload E); scan lengths are drawn uniformly
    #: from [1, max_scan_len] as in the YCSB core definition
    scan_pct: int = 0
    max_scan_len: int = 100

    def __post_init__(self):
        total = (self.read_pct + self.update_pct + self.insert_pct
                 + self.rmw_pct + self.scan_pct)
        if total != 100:
            raise ValueError(f"workload {self.name}: mix sums to {total}")
        if self.scan_pct and self.max_scan_len <= 0:
            raise ValueError(
                f"workload {self.name}: max_scan_len must be positive"
            )


WORKLOAD_A = YcsbWorkload("A", 50, 50, 0, 0)
WORKLOAD_B = YcsbWorkload("B", 95, 5, 0, 0)
WORKLOAD_C = YcsbWorkload("C", 100, 0, 0, 0)
WORKLOAD_D = YcsbWorkload("D", 95, 0, 5, 0, distribution="latest")
WORKLOAD_E = YcsbWorkload("E", 0, 0, 5, 0, scan_pct=95)
WORKLOAD_F = YcsbWorkload("F", 50, 0, 0, 50)

CORE_WORKLOADS: Dict[str, YcsbWorkload] = {
    w.name: w for w in (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C,
                        WORKLOAD_D, WORKLOAD_E, WORKLOAD_F)
}


@dataclass
class YcsbResult:
    rank: int
    workload: str
    ops: int
    load_time: float
    run_time: float
    reads: int
    updates: int
    inserts: int
    rmws: int
    scans: int = 0
    #: total pairs returned by the scan ops (scan lengths vary)
    scanned_pairs: int = 0

    def krps(self) -> float:
        """Run-phase kilo-requests/second on this rank."""
        return self.ops / self.run_time / 1e3 if self.run_time > 0 else 0.0


def run_ycsb(
    ctx: RankContext,
    workload: YcsbWorkload,
    record_count: int = 200,
    op_count: int = 200,
    value_size: int = 1024,
    options: Optional[Options] = None,
    seed: int = 1,
) -> YcsbResult:
    """One rank of a YCSB workload against PapyrusKV.

    ``record_count``/``op_count`` are per rank.  Keys are globally
    unique (``user<rank>:<i>``) so inserts never collide across ranks.
    """
    options = (options or Options()).with_(consistency=SEQUENTIAL)
    env = Papyrus(ctx)
    db = env.open(f"ycsb{workload.name}", options)
    me = ctx.world_rank
    value = value_of_size(value_size)

    def key_of(rank: int, i: int) -> bytes:
        return f"user{rank}:{i:08d}".encode()

    # ---- load phase: bulk pipeline (one sync round per owner per chunk
    # instead of one per key — YCSB's natural thousands-at-once shape)
    db.coll_comm.barrier()
    t0 = ctx.clock.now
    chunk = 256
    with db.batch() as b:
        for lo in range(0, record_count, chunk):
            for i in range(lo, min(lo + chunk, record_count)):
                b.put(key_of(me, i), value)
            b.flush()  # one bulk round per chunk, as before
    db.barrier()
    load_time = ctx.clock.now - t0

    # ---- run phase
    rng = random.Random(rank_seed(seed, me))
    zipf = ZipfianGenerator(record_count, seed=rank_seed(seed + 1, me))
    inserted = record_count
    reads = updates = inserts = rmws = scans = scanned = 0
    t0 = ctx.clock.now
    for _ in range(op_count):
        # pick a key: zipfian over the keyspace, or skewed to latest
        target_rank = rng.randrange(ctx.nranks)
        if workload.distribution == "latest":
            idx = max(0, inserted - 1 - zipf.next())
            idx = min(idx, record_count - 1) if target_rank != me else idx
        else:
            idx = zipf.next()
        if target_rank != me:
            idx = min(idx, record_count - 1)
        key = key_of(target_rank, idx)

        roll = rng.randrange(100)
        if roll < workload.read_pct:
            db.get_or_none(key)
            reads += 1
        elif roll < workload.read_pct + workload.update_pct:
            db.put(key, value)
            updates += 1
        elif roll < (workload.read_pct + workload.update_pct
                     + workload.insert_pct):
            db.put(key_of(me, inserted), value)
            inserted += 1
            inserts += 1
        elif roll < (workload.read_pct + workload.update_pct
                     + workload.insert_pct + workload.rmw_pct):
            got = db.get_or_none(key) or b""
            db.put(key, (got + b"!")[:value_size])
            rmws += 1
        else:
            # YCSB-E scan: the next n records of this rank's shard from
            # the drawn start key — a bounded walk of the lazy iterator
            n = rng.randrange(1, workload.max_scan_len + 1)
            with db.scan(start=key) as it:
                got_pairs = sum(1 for _ in islice(it, n))
            scanned += got_pairs
            scans += 1
    run_time = ctx.clock.now - t0

    result = YcsbResult(
        rank=me, workload=workload.name, ops=op_count,
        load_time=load_time, run_time=run_time,
        reads=reads, updates=updates, inserts=inserts, rmws=rmws,
        scans=scans, scanned_pairs=scanned,
    )
    db.close()
    env.finalize()
    return result
