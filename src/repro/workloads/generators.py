"""Deterministic key/value generators.

"The keys are random strings containing letters (a-Z) and digits (0-9),
generated in a uniformly distributed manner" (paper §5.2).  Generation
is seeded per rank so runs are reproducible and ranks draw disjoint
streams.
"""

from __future__ import annotations

import random
import string
from typing import Iterator, List

_ALPHABET = string.ascii_letters + string.digits


class KeyGenerator:
    """Uniform random alphanumeric keys of a fixed length."""

    def __init__(self, keylen: int, seed: int) -> None:
        if keylen <= 0:
            raise ValueError("keylen must be positive")
        self.keylen = keylen
        self._rng = random.Random(seed)

    def next_key(self) -> bytes:
        """Draw the next random key."""
        return "".join(
            self._rng.choices(_ALPHABET, k=self.keylen)
        ).encode()

    def keys(self, count: int) -> List[bytes]:
        """Draw ``count`` keys."""
        return [self.next_key() for _ in range(count)]

    def __iter__(self) -> Iterator[bytes]:
        while True:
            yield self.next_key()


def value_of_size(nbytes: int, fill: int = 0x5A) -> bytes:
    """A value payload of exactly ``nbytes`` bytes."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    return bytes([fill]) * nbytes


def rank_seed(base_seed: int, rank: int) -> int:
    """Disjoint per-rank seed stream."""
    return (base_seed * 1_000_003 + rank * 7919) & 0x7FFFFFFF
