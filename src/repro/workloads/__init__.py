"""Workload generators and the paper's microbenchmark applications.

The SC'17 artifact ships three applications: ``basic`` (Figures 6-8),
``workload`` (Figures 9 and 11), and ``cr`` (Figure 10).  This package
reimplements them against the reproduction's API so every figure's bench
drives exactly the workload the paper describes.
"""

from repro.workloads.generators import KeyGenerator, value_of_size
from repro.workloads.microbench import (
    BasicResult,
    CrResult,
    WorkloadResult,
    basic_app,
    cr_app,
    workload_app,
)

__all__ = [
    "BasicResult",
    "CrResult",
    "KeyGenerator",
    "WorkloadResult",
    "basic_app",
    "cr_app",
    "value_of_size",
    "workload_app",
]
