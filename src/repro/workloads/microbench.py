"""The artifact's three microbenchmark applications.

* :func:`basic_app` — ``basic <keylen> <vallen> <iters>``: timed put,
  barrier(SSTABLE), and get phases (Figures 6, 7, 8);
* :func:`workload_app` — ``workload <keylen> <vallen> <iters> <update%>``:
  an init phase then a mixed read/update phase under sequential
  consistency (Figures 9, 11);
* :func:`cr_app` — ``cr <keylen> <vallen> <iters> <path> c|r``:
  checkpoint, restart, and restart-with-redistribution (Figure 10).

All timings are virtual seconds from the rank's clock; phases are
bracketed by collective barriers so per-rank durations are comparable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import config
from repro.config import Options
from repro.core.env import Papyrus
from repro.mpi.launcher import RankContext
from repro.workloads.generators import KeyGenerator, rank_seed, value_of_size


@dataclass
class BasicResult:
    """Per-rank outcome of one ``basic`` run."""

    rank: int
    iters: int
    keylen: int
    vallen: int
    put_time: float
    barrier_time: float
    get_time: float
    get_tiers: Dict[str, int] = field(default_factory=dict)

    def krps(self, phase: str) -> float:
        """Kilo-requests/second for a phase on this rank."""
        t = getattr(self, f"{phase}_time")
        return self.iters / t / 1e3 if t > 0 else float("inf")

    def mbps(self, phase: str) -> float:
        """Megabytes/second moved during a phase on this rank."""
        t = getattr(self, f"{phase}_time")
        nbytes = self.iters * (self.keylen + self.vallen)
        return nbytes / t / (1 << 20) if t > 0 else float("inf")


def basic_app(
    ctx: RankContext,
    keylen: int,
    vallen: int,
    iters: int,
    options: Optional[Options] = None,
    repository: str = "nvm",
    seed: int = 1,
    skip_barrier: bool = False,
) -> BasicResult:
    """One rank of the ``basic`` application."""
    options = options or Options()
    env = Papyrus(ctx, repository=repository)
    db = env.open("basic", options)
    gen = KeyGenerator(keylen, rank_seed(seed, ctx.world_rank))
    keys = gen.keys(iters)
    value = value_of_size(vallen)

    db.coll_comm.barrier()
    t0 = ctx.clock.now
    for k in keys:
        db.put(k, value)
    put_time = ctx.clock.now - t0

    t0 = ctx.clock.now
    if not skip_barrier:
        db.barrier(config.SSTABLE)
    barrier_time = ctx.clock.now - t0

    t0 = ctx.clock.now
    for k in keys:
        db.get(k)
    get_time = ctx.clock.now - t0

    result = BasicResult(
        rank=ctx.world_rank, iters=iters, keylen=keylen, vallen=vallen,
        put_time=put_time, barrier_time=barrier_time, get_time=get_time,
        get_tiers=dict(db.stats.get_tiers),
    )
    db.close()
    env.finalize()
    return result


@dataclass
class WorkloadResult:
    """Per-rank outcome of one ``workload`` run."""

    rank: int
    iters: int
    keylen: int
    vallen: int
    init_time: float
    mixed_time: float
    reads: int
    updates: int

    def krps(self) -> float:
        """Mixed-phase kilo-requests/second on this rank."""
        return (
            self.iters / self.mixed_time / 1e3
            if self.mixed_time > 0 else float("inf")
        )


def workload_app(
    ctx: RankContext,
    keylen: int,
    vallen: int,
    iters: int,
    update_pct: int,
    options: Optional[Options] = None,
    repository: str = "nvm",
    seed: int = 2,
    protect_readonly: bool = False,
) -> WorkloadResult:
    """One rank of the ``workload`` application (sequential consistency).

    ``update_pct`` follows the artifact (``workload ... 50`` = 50/50;
    ``0`` = read-only).  ``protect_readonly`` reproduces the ``100/0+P``
    configuration: the read phase runs under ``PAPYRUSKV_RDONLY`` so the
    remote cache activates.
    """
    options = (options or Options()).with_(consistency=config.SEQUENTIAL)
    env = Papyrus(ctx, repository=repository)
    db = env.open("workload", options)
    gen = KeyGenerator(keylen, rank_seed(seed, ctx.world_rank))
    keys = gen.keys(iters)
    value = value_of_size(vallen)

    db.coll_comm.barrier()
    t0 = ctx.clock.now
    for k in keys:
        db.put(k, value)
    db.barrier(config.MEMTABLE)
    init_time = ctx.clock.now - t0

    if protect_readonly:
        db.protect(config.RDONLY)
    rng = random.Random(rank_seed(seed + 99, ctx.world_rank))
    reads = updates = 0
    t0 = ctx.clock.now
    for i in range(iters):
        k = keys[rng.randrange(len(keys))]
        if rng.randrange(100) < update_pct and not protect_readonly:
            db.put(k, value)
            updates += 1
        else:
            db.get(k)
            reads += 1
    mixed_time = ctx.clock.now - t0
    if protect_readonly:
        db.protect(config.RDWR)

    result = WorkloadResult(
        rank=ctx.world_rank, iters=iters, keylen=keylen, vallen=vallen,
        init_time=init_time, mixed_time=mixed_time,
        reads=reads, updates=updates,
    )
    db.close()
    env.finalize()
    return result


@dataclass
class CrResult:
    """Per-rank outcome of the coupled checkpoint/restart applications."""

    rank: int
    iters: int
    keylen: int
    vallen: int
    checkpoint_time: float
    restart_time: float
    restart_rd_time: float

    def bandwidth_MBps(self, phase: str) -> float:
        """Data bandwidth of one persistence phase on this rank."""
        t = getattr(self, f"{phase}_time")
        nbytes = self.iters * (self.keylen + self.vallen)
        return nbytes / t / (1 << 20) if t > 0 else float("inf")


def cr_app(
    ctx: RankContext,
    keylen: int,
    vallen: int,
    iters: int,
    options: Optional[Options] = None,
    seed: int = 3,
    snapshot: str = "crsnap",
) -> CrResult:
    """The three coupled ``cr`` applications in sequence (Figure 10).

    App 1 populates a database and checkpoints it to the parallel FS;
    app 2 restarts it as-is; app 3 restarts it with forced
    redistribution ("even though the last application does not need a
    redistribution, we forced it for the evaluation").
    """
    options = options or Options()
    env = Papyrus(ctx)
    db = env.open("cr", options)
    gen = KeyGenerator(keylen, rank_seed(seed, ctx.world_rank))
    value = value_of_size(vallen)
    for k in gen.keys(iters):
        db.put(k, value)
    db.barrier(config.MEMTABLE)

    t0 = ctx.clock.now
    ev = db.checkpoint(snapshot)
    ev.wait(ctx.clock)
    db.coll_comm.barrier()
    checkpoint_time = ctx.clock.now - t0
    db.destroy().wait(ctx.clock)

    t0 = ctx.clock.now
    db2, ev2 = env.restart(snapshot, "cr", options)
    ev2.wait(ctx.clock)
    db2.coll_comm.barrier()
    restart_time = ctx.clock.now - t0
    db2.destroy().wait(ctx.clock)

    t0 = ctx.clock.now
    db3, ev3 = env.restart(snapshot, "cr", options, force_redistribute=True)
    ev3.wait(ctx.clock)
    db3.coll_comm.barrier()
    restart_rd_time = ctx.clock.now - t0

    result = CrResult(
        rank=ctx.world_rank, iters=iters, keylen=keylen, vallen=vallen,
        checkpoint_time=checkpoint_time, restart_time=restart_time,
        restart_rd_time=restart_rd_time,
    )
    db3.close()
    env.finalize()
    return result
