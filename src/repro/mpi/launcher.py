"""SPMD launcher: run one Python thread per simulated MPI rank.

``spmd_run(nranks, main)`` mirrors ``mpiexec -n nranks python app.py``:
it builds a :class:`~repro.mpi.comm.World`, a per-rank
:class:`RankContext` (rank id, virtual clock, COMM_WORLD, machine
resources), and joins all ranks, re-raising the first failure.

PapyrusKV's internal service threads (message handler) also bind a
:class:`RankContext` so deep library code can always discover "its" rank
and clock through the thread-local registry.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faults import RankKilledError
from repro.mpi.comm import Comm, World
from repro.simtime.clock import VirtualClock, set_current_clock
from repro.simtime.profiles import SUMMITDEV, SystemProfile

_tls = threading.local()


@dataclass
class RankContext:
    """Everything a rank thread needs to run PapyrusKV code."""

    world_rank: int
    nranks: int
    clock: VirtualClock
    comm: Comm
    system: SystemProfile
    machine: Any = None  # repro.nvm.storage.Machine (set by the launcher)
    faults: Any = None  # repro.faults.FaultPlan (set by the launcher)
    #: scratch dict for application use (e.g. returning results)
    user: Dict[str, Any] = field(default_factory=dict)

    @property
    def node(self) -> int:
        return self.system.node_of_rank(self.world_rank)


def current_rank_context() -> RankContext:
    """Return the context bound to the calling thread."""
    ctx: Optional[RankContext] = getattr(_tls, "ctx", None)
    if ctx is None:
        raise RuntimeError(
            "no RankContext bound to this thread; run inside spmd_run() or "
            "bind_context()"
        )
    return ctx


def bind_context(ctx: Optional[RankContext]) -> None:
    """Bind (or unbind) a RankContext and its clock to the calling thread."""
    _tls.ctx = ctx
    set_current_clock(ctx.clock if ctx is not None else None)


class RankFailure(RuntimeError):
    """One or more ranks raised; carries the per-rank exceptions."""

    def __init__(self, failures: List[Tuple[int, BaseException]]) -> None:
        self.failures = failures
        lines = ", ".join(f"rank {r}: {e!r}" for r, e in failures[:4])
        extra = "" if len(failures) <= 4 else f" (+{len(failures) - 4} more)"
        super().__init__(f"SPMD ranks failed: {lines}{extra}")


def spmd_run(
    nranks: int,
    main: Callable[[RankContext], Any],
    *,
    system: SystemProfile = SUMMITDEV,
    machine: Any = None,
    faults: Any = None,
    timeout: Optional[float] = 300.0,
    collect: bool = True,
) -> List[Any]:
    """Run ``main(ctx)`` on ``nranks`` simulated ranks; return their results.

    Parameters
    ----------
    system: platform profile controlling topology and cost model.
    machine: optional pre-built :class:`repro.nvm.storage.Machine`;
        by default one is created for this run (in a temp directory).
    faults: optional :class:`repro.faults.FaultPlan` injected into the
        run's stores and message layer for this run only.
    timeout: wall-clock seconds to wait for completion before aborting.
    collect: if True, return the list of per-rank return values.

    A rank killed by ``FaultPlan.kill_rank`` is not a run failure: its
    result slot stays ``None`` and the remaining ranks run to completion
    (that is what replication-recovery tests exercise).
    """
    if nranks <= 0:
        raise ValueError("nranks must be positive")
    from repro.analysis.runtime import get_detector, maybe_enable_from_env

    det = maybe_enable_from_env()
    if det is not None:
        det.run_start()  # drop per-run location/barrier state
    world = World(nranks, system.network, system.node_of_rank)
    comms = Comm.world_comm(world)

    own_machine = machine is None
    if own_machine:
        from repro.nvm.storage import Machine

        machine = Machine(system, nranks)
    if faults is not None:
        world.faults = faults
        machine.set_faults(faults)

    results: List[Any] = [None] * nranks
    failures: List[Tuple[int, BaseException]] = []
    failures_lock = threading.Lock()

    def runner(rank: int) -> None:
        ctx = RankContext(
            world_rank=rank,
            nranks=nranks,
            clock=world.clocks[rank],
            comm=comms[rank],
            system=system,
            machine=machine,
            faults=faults,
        )
        bind_context(ctx)
        try:
            results[rank] = main(ctx)
        except RankKilledError:
            # an injected rank kill is not a run failure: the victim is
            # simply gone (results[rank] stays None) and the surviving
            # ranks keep running — do NOT abort the world
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            with failures_lock:
                failures.append((rank, exc))
            world.abort()
        finally:
            d = get_detector()
            if d is not None:
                d.finalize_thread()  # publish clock for the join edge
            bind_context(None)

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}",
                         daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    deadline_hit = False
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            deadline_hit = True
            world.abort()
            t.join(10.0)
        if not t.is_alive():
            d = get_detector()
            if d is not None:
                d.absorb_thread(t)  # join HB edge into the launcher
    if own_machine:
        machine.close()
    elif faults is not None:
        machine.set_faults(None)  # don't leak this run's plan into the next
    if failures:
        failures.sort(key=lambda f: f[0])
        raise RankFailure(failures)
    if deadline_hit:
        raise TimeoutError(f"spmd_run exceeded {timeout}s wall-clock")
    return results if collect else []
