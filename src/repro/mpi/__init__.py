"""Simulated MPI: a threaded SPMD runtime with virtual-time semantics.

The real PapyrusKV is a user-level MPI library; since mpi4py and a
cluster are unavailable offline, this package provides an in-process
substitute with the MPI semantics the runtime relies on:

* blocking tagged point-to-point ``send``/``recv`` (plus nonblocking
  ``isend``/``irecv``);
* collectives: ``barrier``, ``bcast``, ``gather``, ``allgather``,
  ``scatter``, ``alltoall``, ``allreduce``;
* communicator ``dup``/``split`` — the PapyrusKV runtime "creates new
  independent MPI communicators and uses them in the message dispatcher
  and message handler" (paper §2.4) for interoperability;
* an SPMD launcher that runs one Python thread per rank.

Messages carry virtual timestamps so communication advances the
per-rank :class:`~repro.simtime.clock.VirtualClock` according to the
system's network profile.
"""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Comm, Request
from repro.mpi.launcher import RankContext, RankFailure, spmd_run

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "RankContext",
    "RankFailure",
    "Request",
    "spmd_run",
]
