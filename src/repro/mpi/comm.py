"""Simulated MPI communicators.

Point-to-point messages traverse per-``(communicator, destination)``
mailboxes; matching follows MPI rules (source+tag, non-overtaking per
source).  Collectives rendezvous on a reusable barrier and synchronize
the participants' virtual clocks.

Distinct communicators have distinct mailbox spaces, so PapyrusKV's
internal dispatcher/handler traffic can never match an application
receive — the property real MPI guarantees via communicator contexts.
"""

from __future__ import annotations

import math
import threading
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional,
    Sequence, Set, Tuple,
)

from repro.analysis.runtime import get_detector, make_lock
from repro.faults import RankKilledError
from repro.mpi.message import Envelope, payload_nbytes
from repro.simtime.clock import VirtualClock
from repro.simtime.profiles import NetworkProfile

if TYPE_CHECKING:
    from repro.faults import FaultPlan

ANY_SOURCE = -1
ANY_TAG = -1

#: intra-node messages go through shared memory: cheap and fast
_SHM_LATENCY_S = 3e-7
_SHM_BANDWIDTH_BPS = 8.0 * (1 << 30)


class AbortedError(RuntimeError):
    """The SPMD run was aborted because another rank failed."""


class _Mailbox:
    """Incoming-message store for one (comm, rank)."""

    def __init__(self, abort_event: threading.Event) -> None:
        self._items: List[Envelope] = []
        self._cond = threading.Condition()
        self._abort = abort_event
        self._dead = False

    def wake_all(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def mark_dead(self) -> None:
        """The owning rank was killed: every blocked or future receive
        on this inbox raises :class:`~repro.faults.RankKilledError`, so
        the rank's handler thread unwinds without aborting the world."""
        with self._cond:
            self._dead = True
            self._cond.notify_all()

    def deliver(self, env: Envelope) -> None:
        with self._cond:
            self._items.append(env)
            self._cond.notify_all()

    def _match_index(self, source: int, tag: int) -> Optional[int]:
        for i, env in enumerate(self._items):
            if (source == ANY_SOURCE or env.source == source) and (
                tag == ANY_TAG or env.tag == tag
            ):
                return i
        return None

    def take(self, source: int, tag: int, timeout: Optional[float]) -> Envelope:
        with self._cond:
            while True:
                if self._dead:
                    raise RankKilledError("rank killed by fault plan")
                if self._abort.is_set():
                    raise AbortedError("SPMD run aborted")
                idx = self._match_index(source, tag)
                if idx is not None:
                    return self._items.pop(idx)
                if not self._cond.wait(timeout):
                    raise TimeoutError(
                        f"recv timed out waiting for source={source} tag={tag}"
                    )

    def poll(self, source: int, tag: int) -> Optional[Envelope]:
        with self._cond:
            idx = self._match_index(source, tag)
            return self._items.pop(idx) if idx is not None else None

    def peek(self, source: int, tag: int) -> bool:
        with self._cond:
            return self._match_index(source, tag) is not None


class _CollectiveState:
    """Per-communicator rendezvous state for collectives."""

    def __init__(self, size: int) -> None:
        self.barrier = threading.Barrier(size)
        self.lock = make_lock("comm.collective")
        # keyed by ("t", rank) / ("a2a", src, dst)-style tuples
        self.slots: Dict[Tuple[Any, ...], Any] = {}
        self.scratch: Any = None


class World:
    """Shared state of one SPMD run: mailboxes, clocks, topology.

    Each node owns two timed resources: an egress NIC (inter-node
    traffic) and a shared-memory bus (intra-node traffic).  Bulk
    transfers queue on them, so the congestion the paper attributes to
    relaxed-mode migration bursts emerges from the model.
    """

    def __init__(
        self,
        size: int,
        network: NetworkProfile,
        node_of_rank: Callable[[int], int],
    ) -> None:
        from repro.simtime.resources import TimedResource

        self.size = size
        self.network = network
        self.node_of_rank = node_of_rank
        self.clocks: List[VirtualClock] = [
            VirtualClock(label=f"rank{r}") for r in range(size)
        ]
        nnodes = max(node_of_rank(r) for r in range(size)) + 1
        self._nics = [
            TimedResource(f"nic{n}", 0.0, network.bandwidth_Bps)
            for n in range(nnodes)
        ]
        self._shm_buses = [
            TimedResource(f"shm{n}", 0.0, _SHM_BANDWIDTH_BPS)
            for n in range(nnodes)
        ]
        self._next_comm_id = 0
        self._comm_lock = make_lock("world.comm")
        self._mailboxes: Dict[Tuple[int, int], _Mailbox] = {}
        self._mbx_lock = make_lock("world.mailboxes")
        self.abort_event = threading.Event()
        self._coll_states: List[_CollectiveState] = []
        self.faults: Optional["FaultPlan"] = None
        #: ranks killed by the fault plane; guarded by ``_mbx_lock``
        self._dead_ranks: Set[int] = set()

    def register_coll(self, coll: "_CollectiveState") -> "_CollectiveState":
        """Track a collective state so abort() can break its barrier."""
        with self._comm_lock:
            self._coll_states.append(coll)
        return coll

    def abort(self) -> None:
        """Wake every blocked rank with an error (failed-rank teardown)."""
        self.abort_event.set()
        with self._comm_lock:
            colls = list(self._coll_states)
        for coll in colls:
            coll.barrier.abort()
        with self._mbx_lock:
            boxes = list(self._mailboxes.values())
        for box in boxes:
            box.wake_all()

    def new_comm_id(self) -> int:
        """Allocate a fresh communicator context id."""
        with self._comm_lock:
            cid = self._next_comm_id
            self._next_comm_id += 1
            return cid

    def kill_rank(self, world_rank: int) -> None:
        """Take one rank out of the run without aborting the world.

        The rank's inboxes (present and future) go dead so its threads
        unwind with :class:`~repro.faults.RankKilledError`, its sends
        are suppressed, and messages addressed to it vanish — exactly
        the observable behaviour of a crashed MPI process to the
        survivors.
        """
        with self._mbx_lock:
            self._dead_ranks.add(world_rank)
            boxes = [b for (_, r), b in self._mailboxes.items()
                     if r == world_rank]
        for box in boxes:
            box.mark_dead()

    def is_dead(self, world_rank: int) -> bool:
        """True if the rank was killed by the fault plane."""
        with self._mbx_lock:
            return world_rank in self._dead_ranks

    def mailbox(self, comm_id: int, world_rank: int) -> _Mailbox:
        """The (lazily created) inbox of one rank on one communicator."""
        key = (comm_id, world_rank)
        with self._mbx_lock:
            box = self._mailboxes.get(key)
            if box is None:
                box = self._mailboxes[key] = _Mailbox(self.abort_event)
                if world_rank in self._dead_ranks:
                    box._dead = True
            return box

    def transfer_cost(self, src: int, dst: int, nbytes: int) -> float:
        """Uncontended latency + transfer time between world ranks."""
        if self.node_of_rank(src) == self.node_of_rank(dst):
            return _SHM_LATENCY_S + nbytes / _SHM_BANDWIDTH_BPS
        net = self.network
        return net.latency_s + nbytes / net.bandwidth_Bps

    def transfer_complete(self, src: int, dst: int, t_send: float,
                          nbytes: int) -> float:
        """Arrival time of one message, queueing on the shared fabric.

        Intra-node messages reserve the source node's memory bus;
        inter-node messages reserve its egress NIC.  Concurrent bulk
        sends from one node therefore serialize at fabric bandwidth —
        the congestion effect the paper observes for relaxed-mode
        migration bursts (§5.2, Figure 7).
        """
        src_node = self.node_of_rank(src)
        if src_node == self.node_of_rank(dst):
            end = self._shm_buses[src_node].access(t_send, nbytes)
            return end + _SHM_LATENCY_S
        end = self._nics[src_node].access(t_send, nbytes)
        return end + self.network.latency_s


class Request:
    """Handle for a nonblocking operation."""

    def __init__(self, fn: Callable[[], Any]) -> None:
        self._fn = fn
        self._done = False
        self._result: Any = None

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Complete the operation, blocking if necessary."""
        if not self._done:
            self._result = self._fn()
            self._done = True
        return self._result

    def test(self) -> Tuple[bool, Any]:
        """Nonblocking completion check (only meaningful for irecv)."""
        if self._done:
            return True, self._result
        probe = getattr(self._fn, "poll", None)
        if probe is not None:
            result = probe()
            if result is not None:
                self._result = result
                self._done = True
                return True, result
            return False, None
        # isend: completes immediately (buffered send)
        return True, self.wait()


class Comm:
    """A communicator over a subset of world ranks."""

    def __init__(self, world: World, group: Sequence[int], comm_id: int,
                 coll: _CollectiveState) -> None:
        self._world = world
        self._group = list(group)
        self._comm_id = comm_id
        self._coll = coll
        self._rank_of_world = {wr: i for i, wr in enumerate(self._group)}

    # ----------------------------------------------------------- construction
    @classmethod
    def world_comm(cls, world: World) -> List["Comm"]:
        """Create the COMM_WORLD-equivalent for every rank."""
        cid = world.new_comm_id()
        coll = world.register_coll(_CollectiveState(world.size))
        group = list(range(world.size))
        return [cls(world, group, cid, coll) for _ in group]

    # -------------------------------------------------------------- properties
    @property
    def size(self) -> int:
        return len(self._group)

    @property
    def rank(self) -> int:
        return self._rank_of_world[self._my_world_rank()]

    def _my_world_rank(self) -> int:
        from repro.mpi.launcher import current_rank_context

        return current_rank_context().world_rank

    def _my_clock(self) -> VirtualClock:
        """The calling *thread's* clock.

        PapyrusKV's handler threads share their rank's mailboxes but run
        on their own timelines, exactly like the paper's service threads.
        """
        from repro.mpi.launcher import current_rank_context

        return current_rank_context().clock

    def world_rank_of(self, comm_rank: int) -> int:
        """Translate a communicator rank to its world rank."""
        return self._group[comm_rank]

    def _deliver(self, src_w: int, dst_w: int, env: Envelope) -> None:
        """Deposit an envelope, consulting the fault plan if one is armed.

        A dropped message still paid its clock/fabric charges on the
        sender side — the bytes left the NIC and vanished.  A duplicate
        is delivered as two distinct envelopes (the receiver must
        dedupe); a delay shifts only the virtual arrival time.
        """
        world = self._world
        if world._dead_ranks and (
            world.is_dead(dst_w) or world.is_dead(src_w)
        ):
            # a dead rank neither sends nor receives: traffic to it
            # vanishes, traffic from its dying threads is suppressed
            return
        plan = self._world.faults
        box = self._world.mailbox(self._comm_id, dst_w)
        duplicate = False
        if plan is not None:
            action = plan.on_message(env.payload, src_w, dst_w)
            if action == "drop":
                return
            if action == "duplicate":
                duplicate = True
            elif isinstance(action, tuple) and action[0] == "delay":
                env = Envelope(env.source, env.dest, env.tag, env.payload,
                               env.arrival + action[1], env.nbytes)
        det = get_detector()
        if det is not None:
            det.on_send(env)  # attach the sender's clock (HB edge)
        if duplicate:
            box.deliver(env)
        box.deliver(env)

    # ------------------------------------------------------------------- p2p
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered send: deposits the message and returns immediately."""
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        clock = self._my_clock()
        clock.advance(self._world.network.sw_overhead_s)
        src_w = self._my_world_rank()
        dst_w = self._group[dest]
        nbytes = payload_nbytes(obj)
        arrival = self._world.transfer_complete(src_w, dst_w, clock.now, nbytes)
        env = Envelope(self.rank, dest, tag, obj, arrival, nbytes)
        self._deliver(src_w, dst_w, env)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send (buffered: completes immediately)."""
        self.send(obj, dest, tag)
        return Request(lambda: None)

    def send_at(self, obj: Any, dest: int, tag: int, t_send: float) -> float:
        """Send with an explicit virtual send time (background timelines).

        Used by the message dispatcher, whose work is charged to a
        background worker rather than the caller's clock.  Returns the
        message's arrival time at the destination.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        src_w = self._my_world_rank()
        dst_w = self._group[dest]
        nbytes = payload_nbytes(obj)
        arrival = self._world.transfer_complete(
            src_w, dst_w, t_send + self._world.network.sw_overhead_s, nbytes
        )
        env = Envelope(self.rank, dest, tag, obj, arrival, nbytes)
        self._deliver(src_w, dst_w, env)
        return arrival

    def fanout(self, payloads: Mapping[int, Any], tag: int = 0
               ) -> Dict[int, float]:
        """alltoallv-style personalized fan-out: one send per destination.

        The software send overhead is paid once for the whole batch
        instead of once per message — the amortization a coalescing
        message layer (or a real ``MPI_Alltoallv``) provides.  Each
        message still queues individually on the fabric, so transfer
        time and NIC contention are modelled exactly as with
        :meth:`send`.  Returns ``{dest: arrival time}``.
        """
        clock = self._my_clock()
        clock.advance(self._world.network.sw_overhead_s)
        src_w = self._my_world_rank()
        arrivals: Dict[int, float] = {}
        for dest in sorted(payloads):
            if not 0 <= dest < self.size:
                raise ValueError(f"invalid destination rank {dest}")
            obj = payloads[dest]
            dst_w = self._group[dest]
            nbytes = payload_nbytes(obj)
            arrival = self._world.transfer_complete(
                src_w, dst_w, clock.now, nbytes
            )
            env = Envelope(self.rank, dest, tag, obj, arrival, nbytes)
            self._deliver(src_w, dst_w, env)
            arrivals[dest] = arrival
        return arrivals

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
        status: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Blocking receive; advances the clock to the message arrival."""
        clock = self._my_clock()
        box = self._world.mailbox(self._comm_id, self._my_world_rank())
        env = box.take(source, tag, timeout)
        det = get_detector()
        if det is not None:
            det.on_recv(env)
        clock.advance(self._world.network.sw_overhead_s)
        clock.advance_to(env.arrival)
        if status is not None:
            status["source"] = env.source
            status["tag"] = env.tag
            status["nbytes"] = env.nbytes
            status["arrival"] = env.arrival
        return env.payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; complete with ``Request.wait``/``test``."""
        box = self._world.mailbox(self._comm_id, self._my_world_rank())
        clock = self._my_clock()

        def blocking() -> Any:
            env = box.take(source, tag, None)
            det = get_detector()
            if det is not None:
                det.on_recv(env)
            clock.advance_to(env.arrival)
            return env.payload

        def poll() -> Optional[Any]:
            env = box.poll(source, tag)
            if env is None:
                return None
            det = get_detector()
            if det is not None:
                det.on_recv(env)
            clock.advance_to(env.arrival)
            return env.payload

        blocking.poll = poll  # type: ignore[attr-defined]
        return Request(blocking)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already deliverable."""
        box = self._world.mailbox(self._comm_id, self._my_world_rank())
        return box.peek(source, tag)

    def sendrecv(self, obj: Any, dest: int, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> Any:
        """Combined send+receive (deadlock-free exchange)."""
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag)

    # ------------------------------------------------------------ collectives
    def _tree_cost(self, nbytes: int) -> float:
        net = self._world.network
        steps = max(1, math.ceil(math.log2(max(2, self.size))))
        return steps * (net.latency_s + net.sw_overhead_s) + (
            nbytes / net.bandwidth_Bps
        )

    def _sync_clocks(self, extra: float) -> float:
        """Align all group clocks to max + extra; returns the new time."""
        coll = self._coll
        me = self.rank
        clock = self._my_clock()
        det = get_detector()
        if det is not None:
            det.on_barrier_arrive(coll)
        with coll.lock:
            coll.slots[("t", me)] = clock.now
        coll.barrier.wait()
        if det is not None:
            det.on_barrier_depart(coll)
        t_max = max(coll.slots[("t", r)] for r in range(self.size))
        t_new = t_max + extra
        clock.advance_to(t_new)
        coll.barrier.wait()  # everyone read before slots are reused
        if me == 0:
            with coll.lock:
                for r in range(self.size):
                    coll.slots.pop(("t", r), None)
        coll.barrier.wait()
        return t_new

    def barrier(self) -> float:
        """Collective barrier; returns the synchronized virtual time."""
        return self._sync_clocks(self._tree_cost(0))

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to every group member."""
        coll = self._coll
        me = self.rank
        if me == root:
            with coll.lock:
                coll.scratch = obj
        coll.barrier.wait()
        data = coll.scratch
        self._sync_clocks(self._tree_cost(payload_nbytes(data)))
        return data

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one value per rank at ``root`` (None elsewhere)."""
        coll = self._coll
        me = self.rank
        with coll.lock:
            coll.slots[("g", me)] = obj
        coll.barrier.wait()
        result = None
        total = sum(
            payload_nbytes(coll.slots[("g", r)]) for r in range(self.size)
        )
        if me == root:
            result = [coll.slots[("g", r)] for r in range(self.size)]
        self._sync_clocks(self._tree_cost(total))
        if me == root:
            with coll.lock:
                for r in range(self.size):
                    coll.slots.pop(("g", r), None)
        coll.barrier.wait()
        return result

    def allgather(self, obj: Any) -> List[Any]:
        """Gather one value per rank, delivered to every rank."""
        coll = self._coll
        me = self.rank
        with coll.lock:
            coll.slots[("ag", me)] = obj
        coll.barrier.wait()
        result = [coll.slots[("ag", r)] for r in range(self.size)]
        total = sum(payload_nbytes(x) for x in result)
        self._sync_clocks(self._tree_cost(total))
        if me == 0:
            with coll.lock:
                for r in range(self.size):
                    coll.slots.pop(("ag", r), None)
        coll.barrier.wait()
        return result

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Distribute one element of ``objs`` (at root) to each rank."""
        coll = self._coll
        me = self.rank
        if me == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter requires size elements at root")
            with coll.lock:
                for r in range(self.size):
                    coll.slots[("s", r)] = objs[r]
        coll.barrier.wait()
        mine = coll.slots[("s", me)]
        self._sync_clocks(self._tree_cost(payload_nbytes(mine)))
        coll.barrier.wait()
        if me == root:
            with coll.lock:
                for r in range(self.size):
                    coll.slots.pop(("s", r), None)
        coll.barrier.wait()
        return mine

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        """Personalized exchange: rank i receives objs[i] from everyone."""
        if len(objs) != self.size:
            raise ValueError("alltoall requires size elements")
        coll = self._coll
        me = self.rank
        with coll.lock:
            for r in range(self.size):
                coll.slots[("a2a", me, r)] = objs[r]
        coll.barrier.wait()
        result = [coll.slots[("a2a", r, me)] for r in range(self.size)]
        recv_bytes = sum(payload_nbytes(x) for x in result)
        send_bytes = sum(payload_nbytes(x) for x in objs)
        self._sync_clocks(self._tree_cost(max(recv_bytes, send_bytes)))
        coll.barrier.wait()
        if me == 0:
            with coll.lock:
                for key in [k for k in coll.slots if k[0] == "a2a"]:
                    coll.slots.pop(key, None)
        coll.barrier.wait()
        return result

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        """Reduce one value per rank with ``op``; all ranks get the result."""
        values = self.allgather(obj)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    def abort_world(self) -> None:
        """Abort the whole SPMD run (service-thread crash escalation)."""
        self._world.abort()

    def kill_world_rank(self, world_rank: int) -> None:
        """Mark one world rank dead (injected kill; the world survives)."""
        self._world.kill_rank(world_rank)

    # ------------------------------------------------------- comm management
    def dup(self) -> "Comm":
        """Collective duplicate with a fresh mailbox space.

        Every member receives an equivalent communicator object whose
        traffic is isolated from the parent's.
        """
        coll = self._coll
        me = self.rank
        if me == 0:
            # register outside coll.lock: register_coll takes world.comm,
            # which the canonical order puts BELOW comm.collective
            cid = self._world.new_comm_id()
            new_coll = self._world.register_coll(_CollectiveState(self.size))
            with coll.lock:
                coll.scratch = (cid, new_coll)
        coll.barrier.wait()
        cid, new_coll = coll.scratch
        coll.barrier.wait()
        return Comm(self._world, self._group, cid, new_coll)

    def split(self, color: int, key: int = 0) -> "Comm":
        """Collective split into disjoint sub-communicators by color."""
        coll = self._coll
        me = self.rank
        with coll.lock:
            coll.slots[("sp", me)] = (color, key, self._group[me])
        coll.barrier.wait()
        triples = [coll.slots[("sp", r)] for r in range(self.size)]
        mine = [
            (k, wr) for (c, k, wr) in triples if c == color
        ]
        mine.sort()
        group = [wr for _, wr in mine]
        if me == 0:
            colors = sorted({c for c, _, _ in triples})
            comm_ids = {c: self._world.new_comm_id() for c in colors}
            colls = {
                c: self._world.register_coll(
                    _CollectiveState(sum(1 for cc, _, _ in triples if cc == c))
                )
                for c in colors
            }
            with coll.lock:
                coll.scratch = (comm_ids, colls)
        coll.barrier.wait()
        comm_ids, colls = coll.scratch
        coll.barrier.wait()
        if me == 0:
            with coll.lock:
                for r in range(self.size):
                    coll.slots.pop(("sp", r), None)
        coll.barrier.wait()
        return Comm(self._world, group, comm_ids[color], colls[color])
