"""Message envelope and size accounting for the simulated network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


def payload_nbytes(obj: Any) -> int:
    """Estimate the wire size of a message payload.

    Byte strings dominate PapyrusKV traffic (keys/values); container
    overheads get a small fixed charge per element, standing in for
    (de)serialization framing.
    """
    if obj is None:
        return 0
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (int, float, bool)):
        return 8
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    if hasattr(obj, "wire_nbytes"):
        return int(obj.wire_nbytes())
    return 64  # opaque object: flat charge


@dataclass
class Envelope:
    """A message in flight on the simulated interconnect."""

    source: int
    dest: int
    tag: int
    payload: Any
    #: virtual time at which the message reaches the destination NIC
    arrival: float
    nbytes: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Envelope {self.source}->{self.dest} tag={self.tag} "
            f"{self.nbytes}B t={self.arrival:.6f}>"
        )
