"""R006 — static wire-protocol state-machine verification.

PapyrusKV's liveness depends on per-message invariants that no single
file shows: a retried mutation must be deduplicated or fences double
apply (paper §2.4), a replication/index message without a membership
stamp can revive a dead epoch's view, a request without a reply path
hangs its sender forever, and a handler that *sends* on the request
comm can rendezvous-deadlock against a peer's handler doing the same.

This checker extracts the actual state machine from the source —
``WIRE_TAGS`` in ``messages.py``, the per-class dataclass fields, and
the ``isinstance`` dispatch arms in the sibling ``handler.py`` — and
verifies it against a checked-in spec (``protocol.py`` next to
``messages.py``, see :mod:`repro.core.protocol`).  The spec is parsed
with :mod:`ast` rather than imported, so fixtures and partially broken
trees can still be linted and no import cycle through
``repro.core.__init__`` exists.

Per-entry checks (all findings carry rule ``R006``):

* every ``WIRE_TAGS`` entry has a spec entry and vice versa — the
  extracted machine must cover the wire surface completely;
* ``retryable: True`` → the class carries a ``seq`` field *and* its
  dispatch arm applies it under the seq-dedup gate
  (``_already_applied``);
* ``epoch_stamped: True`` → the class carries ``epoch`` and ``dead``
  fields; every ``Replica*``/``Index*`` class must be declared
  ``epoch_stamped`` (the spec cannot quietly opt a family out);
* every request (``kind: "request"``) has a dispatch arm, and its
  declared ``reply`` class (when not ``None``) exists in ``WIRE_TAGS``
  and is actually constructed by the arm's serve path;
* no call in ``handler.py`` sends on the request comm
  (``REQUEST_COMM`` in the spec): the handler answers on the response
  and ack comms only.
"""

from __future__ import annotations

import ast
import os
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding

__all__ = ["check_protocol", "spec_path_for"]

#: comm methods that put a message on the wire (handler send check)
_SEND_CALLS = frozenset({
    "send", "send_at", "fanout", "bcast", "scatter", "sendrecv",
    "alltoall",
})


def spec_path_for(messages_path: str) -> str:
    """The protocol spec expected next to a messages module."""
    return os.path.join(os.path.dirname(messages_path), "protocol.py")


def _attr_or_name(node: ast.expr) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _chain(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _load_spec(spec_path: str) -> Tuple[
    Optional[Dict[str, Dict[str, Any]]], Optional[str], List[str]
]:
    """Parse ``MESSAGE_SPECS`` and ``REQUEST_COMM`` from the spec file.

    Returns ``(specs, request_comm, parse_errors)``; a malformed spec
    yields errors instead of silently passing the checks.
    """
    errors: List[str] = []
    try:
        with open(spec_path, encoding="utf-8") as f:
            tree = ast.parse(f.read(), filename=spec_path)
    except (OSError, SyntaxError) as exc:
        return None, None, [f"cannot parse protocol spec: {exc}"]
    specs: Optional[Dict[str, Dict[str, Any]]] = None
    request_comm: Optional[str] = None
    for node in tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        name = node.targets[0].id
        if name == "REQUEST_COMM":
            if (isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)):
                request_comm = node.value.value
            else:
                errors.append("REQUEST_COMM must be a string literal")
        elif name == "MESSAGE_SPECS":
            try:
                raw = ast.literal_eval(node.value)
            except ValueError:
                errors.append("MESSAGE_SPECS must be a literal dict")
                continue
            if not isinstance(raw, dict):
                errors.append("MESSAGE_SPECS must be a dict")
                continue
            specs = {}
            for key, val in raw.items():
                if not (isinstance(key, str) and isinstance(val, dict)):
                    errors.append(
                        f"MESSAGE_SPECS entry {key!r} must map a class"
                        " name to a dict"
                    )
                    continue
                specs[key] = val
    if specs is None:
        errors.append("protocol spec defines no MESSAGE_SPECS dict")
    return specs, request_comm, errors


def _wire_tag_classes(tree: ast.Module) -> List[str]:
    """Class-name keys of the WIRE_TAGS literal (order preserved)."""
    for node in tree.body:
        value: Optional[ast.expr] = None
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "WIRE_TAGS"):
            value = node.value
        elif (isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "WIRE_TAGS"):
            value = node.value
        if isinstance(value, ast.Dict):
            return [k.value for k in value.keys
                    if isinstance(k, ast.Constant)
                    and isinstance(k.value, str)]
    return []


def _class_fields(tree: ast.Module) -> Dict[str, Set[str]]:
    """Per message class: the set of declared (annotated) field names."""
    out: Dict[str, Set[str]] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        fields: Set[str] = set()
        for sub in node.body:
            if (isinstance(sub, ast.AnnAssign)
                    and isinstance(sub.target, ast.Name)):
                fields.add(sub.target.id)
            elif isinstance(sub, ast.Assign):
                for tgt in sub.targets:
                    if isinstance(tgt, ast.Name):
                        fields.add(tgt.id)
        out[node.name] = fields
    return out


def _class_lines(tree: ast.Module) -> Dict[str, int]:
    return {node.name: node.lineno for node in tree.body
            if isinstance(node, ast.ClassDef)}


def _handler_functions(tree: ast.Module) -> Dict[str, ast.AST]:
    return {node.name: node for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _names_in(node: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
    return out


def _dispatch_arms(tree: ast.Module) -> Dict[str, Tuple[int, List[ast.stmt]]]:
    """message class -> (line, body stmts) of its ``isinstance`` arm."""
    arms: Dict[str, Tuple[int, List[ast.stmt]]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (isinstance(test, ast.Call)
                and _attr_or_name(test.func) == "isinstance"
                and len(test.args) == 2):
            continue
        targets = test.args[1]
        classes = (targets.elts if isinstance(targets, ast.Tuple)
                   else [targets])
        for cls_node in classes:
            cls = _attr_or_name(cls_node)
            if cls and cls not in arms:
                arms[cls] = (node.lineno, node.body)
    return arms


def _arm_effective_names(body: List[ast.stmt],
                         handler_funcs: Dict[str, ast.AST]) -> Set[str]:
    """Names visible from a dispatch arm: its body plus the bodies of
    handler-module functions it calls (the ``_serve_*`` indirection)."""
    names: Set[str] = set()
    for stmt in body:
        names |= _names_in(stmt)
    for called in list(names):
        fn = handler_funcs.get(called)
        if fn is not None:
            names |= _names_in(fn)
    return names


def check_protocol(messages_path: str, tree: ast.Module,
                   handler_path: Optional[str] = None,
                   spec_path: Optional[str] = None) -> List[Finding]:
    """Run R006 over one messages module and its siblings.

    ``handler_path``/``spec_path`` default to ``handler.py`` /
    ``protocol.py`` next to the messages file.  Returns no findings
    when the spec file does not exist (protocol verification is opted
    into by checking in a spec).
    """
    spec_path = spec_path or spec_path_for(messages_path)
    if not os.path.exists(spec_path):
        return []
    findings: List[Finding] = []

    def flag(message: str, path: str = messages_path, line: int = 1,
             function: str = "<module>") -> None:
        findings.append(Finding(
            tool="pkvlint", rule="R006", message=message,
            path=path, line=line, function=function,
        ))

    specs, request_comm, errors = _load_spec(spec_path)
    for err in errors:
        flag(err, path=spec_path)
    if specs is None:
        return findings

    wire_classes = _wire_tag_classes(tree)
    fields = _class_fields(tree)
    lines = _class_lines(tree)

    # -------- coverage: the spec and the wire surface must be identical
    for cls in wire_classes:
        if cls not in specs:
            flag(
                f"WIRE_TAGS entry `{cls}` has no protocol spec entry —"
                " the state machine does not cover it",
                line=lines.get(cls, 1), function=cls,
            )
    for cls in specs:
        if cls not in wire_classes:
            flag(
                f"protocol spec entry `{cls}` has no WIRE_TAGS entry —"
                " the spec describes a message that is not on the wire",
                path=spec_path,
            )

    # ---------------------------------------- handler dispatch extraction
    handler_path = handler_path or os.path.join(
        os.path.dirname(messages_path), "handler.py"
    )
    arms: Dict[str, Tuple[int, List[ast.stmt]]] = {}
    handler_funcs: Dict[str, ast.AST] = {}
    handler_tree: Optional[ast.Module] = None
    if os.path.exists(handler_path):
        with open(handler_path, encoding="utf-8") as f:
            try:
                handler_tree = ast.parse(f.read(), filename=handler_path)
            except SyntaxError:
                handler_tree = None
        if handler_tree is not None:
            arms = _dispatch_arms(handler_tree)
            handler_funcs = _handler_functions(handler_tree)

    # ------------------------------------------------- per-entry checks
    for cls, spec in sorted(specs.items()):
        if cls not in wire_classes:
            continue
        line = lines.get(cls, 1)
        cls_fields = fields.get(cls, set())
        kind = spec.get("kind")
        retryable = bool(spec.get("retryable", False))
        epoch_stamped = bool(spec.get("epoch_stamped", False))
        if (cls.startswith("Replica") or cls.startswith("Index")) \
                and not epoch_stamped:
            flag(
                f"`{cls}` is a replication/index message but the spec"
                " does not declare it epoch_stamped — membership stamps"
                " are what keep dead epochs dead",
                path=spec_path,
            )
            epoch_stamped = True  # still verify the fields below
        if epoch_stamped:
            missing = {"epoch", "dead"} - cls_fields
            if missing:
                flag(
                    f"`{cls}` is declared epoch_stamped but lacks"
                    f" field(s) {sorted(missing)} — a receiver cannot"
                    " reject stale-epoch traffic it cannot see",
                    line=line, function=cls,
                )
        if retryable and "seq" not in cls_fields:
            flag(
                f"`{cls}` is declared retryable but carries no `seq`"
                " field — a retransmitted message cannot be"
                " deduplicated",
                line=line, function=cls,
            )
        if kind == "request" and handler_tree is not None:
            arm = arms.get(cls)
            if arm is None:
                flag(
                    f"request `{cls}` has no isinstance dispatch arm in"
                    " the handler — its sender hangs forever",
                    line=line, function=cls,
                )
                continue
            arm_line, arm_body = arm
            names = _arm_effective_names(arm_body, handler_funcs)
            if retryable and "_already_applied" not in names:
                flag(
                    f"request `{cls}` is retryable but its dispatch arm"
                    " never consults the seq-dedup gate"
                    " (`_already_applied`) — a retransmit re-applies"
                    " the mutation",
                    path=handler_path, line=arm_line, function=cls,
                )
            reply = spec.get("reply", None)
            if reply is not None:
                if reply not in wire_classes:
                    flag(
                        f"request `{cls}` declares reply `{reply}`"
                        " which has no WIRE_TAGS entry",
                        path=spec_path,
                    )
                elif reply not in names:
                    flag(
                        f"request `{cls}`'s dispatch arm never"
                        f" constructs its declared reply `{reply}` —"
                        " the sender's wait never completes",
                        path=handler_path, line=arm_line, function=cls,
                    )
    # a handler arm dispatching a class the wire surface does not know
    for cls, (arm_line, _body) in sorted(arms.items()):
        if (cls.endswith("Msg") or cls.endswith("Reply")) \
                and cls not in wire_classes:
            flag(
                f"handler dispatches `{cls}` which has no WIRE_TAGS"
                " entry — untagged messages cannot be on the wire",
                path=handler_path, line=arm_line, function=cls,
            )

    # ----------------------------- no handler send on the request comm
    if handler_tree is not None and request_comm:
        for node in ast.walk(handler_tree):
            if not isinstance(node, ast.Call):
                continue
            name = _attr_or_name(node.func)
            if name in _SEND_CALLS and isinstance(node.func, ast.Attribute):
                chain = _chain(node.func.value)
                if request_comm in chain.split("."):
                    flag(
                        f"handler sends on the request comm"
                        f" (`{chain}.{name}`) — the request comm"
                        " must stay one-directional or two handlers"
                        " can rendezvous-deadlock",
                        path=handler_path, line=node.lineno,
                        function="<handler>",
                    )
    findings.sort(key=lambda f: (f.path, f.line, f.message))
    return findings
