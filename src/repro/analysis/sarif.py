"""SARIF 2.1.0 output for pkvlint findings.

``papyruskv lint --format sarif`` emits a minimal, valid SARIF log so
CI can upload it (``github/codeql-action/upload-sarif``) and findings
render as inline annotations on pull requests.  Only the fields the
renderers actually consume are produced: one ``run`` for the tool, a
rule table built from the findings present, and one ``result`` per
finding with its physical location.  Interprocedural call paths are
appended to the message text — SARIF ``codeFlows`` would need column
data the analyzer does not track.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.analysis.findings import Finding

__all__ = ["findings_to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: one-line rule descriptions for the SARIF rule table
_RULE_DESCRIPTIONS: Dict[str, str] = {
    "R001": "No blocking comm call while holding a registered lock"
            " (interprocedural).",
    "R002": "Every persistent write/rename must be ordered behind an"
            " fsync (crash-ordering reachability).",
    "R003": "WIRE_TAGS covers every message class with a unique tag and"
            " a handler arm.",
    "R004": "Registered locks are acquired in the canonical order"
            " (interprocedural).",
    "R005": "No bare except and no silently swallowed CorruptionError.",
    "R006": "The wire-protocol state machine satisfies the checked-in"
            " protocol spec.",
    "R007": "Wall-clock values never flow into simtime-governed"
            " scheduling.",
    "SYNTAX": "The file could not be parsed.",
}


def _rule_ids(findings: Sequence[Finding]) -> List[str]:
    seen: List[str] = []
    for f in findings:
        if f.rule not in seen:
            seen.append(f.rule)
    return sorted(seen)


def findings_to_sarif(findings: Sequence[Finding]) -> str:
    """Serialize findings as a SARIF 2.1.0 log (JSON text)."""
    rules = [
        {
            "id": rule,
            "shortDescription": {
                "text": _RULE_DESCRIPTIONS.get(rule, rule),
            },
        }
        for rule in _rule_ids(findings)
    ]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for f in findings:
        text = f.message
        if f.function:
            text = f"[{f.function}] {text}"
        if f.call_path:
            text += " (via " + " -> ".join(f.call_path) + ")"
        result: Dict[str, Any] = {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": "error" if f.rule == "SYNTAX" else "warning",
            "message": {"text": text},
        }
        if f.path:
            result["locations"] = [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path.replace("\\", "/"),
                    },
                    "region": {"startLine": max(f.line, 1)},
                },
            }]
        results.append(result)
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "pkvlint",
                    "informationUri":
                        "https://github.com/ORNL/papyrus",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2)
