"""Vector clocks for happens-before race detection.

The detector (:mod:`repro.analysis.runtime`) is FastTrack-flavoured
(Flanagan & Freund, PLDI '09): each thread carries a vector clock; each
shared location remembers its last-writer *epoch* ``(tid, tick)`` and a
map of reader epochs.  Synchronization edges — lock release→acquire,
message send→receive, barrier, queue hand-off, thread join — merge
clocks; an access races when the prior access's epoch is not ordered
before the accessing thread's clock.

Clocks are plain ``dict[int, int]`` (thread id → tick), kept tiny and
allocation-light because every instrumented access touches one.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: one thread's position in the happens-before order
Clock = Dict[int, int]

#: a single access: (tid, tick at access time)
Epoch = Tuple[int, int]


def fresh_clock(tid: int) -> Clock:
    """A new thread's clock: its own component starts at 1."""
    return {tid: 1}


def merge_into(dst: Clock, src: Clock) -> None:
    """Pointwise max of ``src`` into ``dst`` (a join in the HB lattice)."""
    for tid, tick in src.items():
        if dst.get(tid, 0) < tick:
            dst[tid] = tick


def epoch_of(tid: int, clock: Clock) -> Epoch:
    """The calling thread's current epoch."""
    return (tid, clock.get(tid, 0))


def happens_before(epoch: Epoch, clock: Clock) -> bool:
    """True when the access at ``epoch`` is ordered before ``clock``."""
    tid, tick = epoch
    return clock.get(tid, 0) >= tick
