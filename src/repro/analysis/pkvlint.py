"""pkvlint — the project's AST-based static analyzer.

Five rules, each encoding an invariant of the PapyrusKV runtime that an
ordinary linter cannot know:

``R001``
    No blocking ``Comm`` call (``send``/``recv``/``barrier``/collectives)
    while lexically inside a ``with`` block holding a registered lock
    (see :mod:`repro.analysis.lock_order`).  A handler blocked in
    ``recv`` while holding ``db.state`` deadlocks the rank.
``R002``
    Every ``os.rename``/``os.replace``/``Path.rename`` must be preceded
    (earlier in the same function) by an ``fsync``-named call: a rename
    publishing non-durable bytes breaks crash consistency.
``R003``
    ``core/messages.py`` must carry a ``WIRE_TAGS`` literal mapping with
    a unique integer tag per message class, and every ``*Msg`` class
    must be referenced by ``core/handler.py`` (i.e. have a handler arm).
``R004``
    Lexically nested ``with`` blocks on registered lock attributes must
    follow the canonical order (inner level strictly greater).
``R005``
    No bare ``except:`` and no silently swallowed ``CorruptionError``
    (an except arm whose body is only ``pass``).

Suppression: append ``# pkvlint: disable=R00x[,R00y]`` to the flagged
line, or add ``RULE pattern`` entries to an allowlist file (default
``.pkvlint-allow``); patterns match substrings of ``path::function``.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, is_allowed, load_allowlist
from repro.analysis.lock_order import LOCK_ATTRS, level_of_attr

__all__ = ["lint_file", "lint_paths", "COMM_BLOCKING_CALLS"]

#: Comm methods that block or synchronize (R001 targets)
COMM_BLOCKING_CALLS = frozenset({
    "send", "send_at", "recv", "sendrecv", "fanout", "barrier",
    "bcast", "gather", "allgather", "scatter", "alltoall", "allreduce",
    "reduce",
})

_SUPPRESS_RE = re.compile(r"#\s*pkvlint:\s*disable=([A-Z0-9, ]+)")

_LOCK_ATTR_SET = frozenset(LOCK_ATTRS)


def _suppressions(src: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule ids disabled on that line."""
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(src.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            out[i] = rules
    return out


def _attr_chain(node: ast.AST) -> str:
    """Dotted-name text of a Name/Attribute chain (best effort)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _call_name(call: ast.Call) -> str:
    """The called attribute or function name (last path component)."""
    fn = call.func
    if isinstance(fn, ast.Attribute):
        return fn.attr
    if isinstance(fn, ast.Name):
        return fn.id
    return ""


def _with_lock_attrs(node: ast.With) -> List[Tuple[str, int]]:
    """Registered lock attributes acquired by a ``with`` statement."""
    out: List[Tuple[str, int]] = []
    for item in node.items:
        expr = item.context_expr
        # unwrap `with self._lock:` and `with lock.acquire_ctx():` alike
        target = expr.func if isinstance(expr, ast.Call) else expr
        if isinstance(target, ast.Attribute) and target.attr in _LOCK_ATTR_SET:
            out.append((target.attr, expr.lineno))
    return out


def _check_try(path: str, func: str, node: ast.Try,
               findings: List[Finding]) -> None:
    """R005 on one ``try`` statement."""
    for h in node.handlers:
        if h.type is None:
            findings.append(Finding(
                tool="pkvlint",
                rule="R005",
                message="bare `except:` hides corruption and"
                        " cancellation — name the exception",
                path=path, line=h.lineno, function=func,
            ))
        elif _swallows_corruption(h):
            findings.append(Finding(
                tool="pkvlint",
                rule="R005",
                message="`CorruptionError` swallowed with an empty"
                        " handler — corruption must be quarantined"
                        " or re-raised",
                path=path, line=h.lineno, function=func,
            ))


def _swallows_corruption(handler: ast.ExceptHandler) -> bool:
    names: List[str] = []
    t = handler.type
    nodes = t.elts if isinstance(t, ast.Tuple) else [t]
    for n in nodes:
        if n is not None:
            names.append(_attr_chain(n).rsplit(".", 1)[-1])
    if "CorruptionError" not in names:
        return False
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis):
            continue
        return False
    return True


class _FunctionChecker(ast.NodeVisitor):
    """Per-function R001/R002/R004 walker tracking lexical lock scope."""

    def __init__(self, path: str, func_name: str,
                 findings: List[Finding]) -> None:
        self.path = path
        self.func = func_name
        self.findings = findings
        #: stack of (lock attr, level, with-lineno) currently held
        self.held: List[Tuple[str, Optional[int], int]] = []
        self.fsync_lines: List[int] = []

    # nested defs get their own checker: a closure body does not run
    # under the enclosing with-block (e.g. deferred background jobs)
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        sub = _FunctionChecker(self.path, f"{self.func}.{node.name}",
                               self.findings)
        for stmt in node.body:
            sub.visit(stmt)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        sub = _FunctionChecker(self.path, f"{self.func}.<lambda>",
                               self.findings)
        sub.visit(node.body)

    def visit_With(self, node: ast.With) -> None:
        acquired = _with_lock_attrs(node)
        for attr, lineno in acquired:
            level = level_of_attr(attr)
            for held_attr, held_level, held_line in self.held:
                if (level is not None and held_level is not None
                        and level < held_level):
                    self.findings.append(Finding(
                        tool="pkvlint",
                        rule="R004",
                        message=(
                            f"lock `{attr}` (level {level}) acquired "
                            f"inside `{held_attr}` (level {held_level})"
                            " — violates the canonical lock order"
                        ),
                        path=self.path,
                        line=lineno,
                        function=self.func,
                        details=(
                            f"`{held_attr}` taken at line {held_line}",
                        ),
                    ))
            self.held.append((attr, level, lineno))
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if "fsync" in name:
            self.fsync_lines.append(node.lineno)
        if self.held and name in COMM_BLOCKING_CALLS:
            chain = _attr_chain(node.func).lower()
            if "comm" in chain:
                held_attr, _lvl, held_line = self.held[-1]
                self.findings.append(Finding(
                    tool="pkvlint",
                    rule="R001",
                    message=(
                        f"blocking comm call `{name}` while holding "
                        f"lock `{held_attr}` — a blocked peer deadlocks"
                        " this rank"
                    ),
                    path=self.path,
                    line=node.lineno,
                    function=self.func,
                    details=(f"`{held_attr}` taken at line {held_line}",),
                ))
        if name in ("rename", "replace", "move"):
            chain = _attr_chain(node.func)
            root = chain.split(".", 1)[0].lower()
            is_fs = chain in ("os.rename", "os.replace", "shutil.move") or (
                name == "rename" and "path" in root)
            if is_fs:
                if not any(fl < node.lineno for fl in self.fsync_lines):
                    self.findings.append(Finding(
                        tool="pkvlint",
                        rule="R002",
                        message=(
                            f"`{chain or name}` publishes a file with no"
                            " earlier fsync in this function — rename"
                            " of non-durable bytes breaks crash"
                            " consistency"
                        ),
                        path=self.path,
                        line=node.lineno,
                        function=self.func,
                    ))
        self.generic_visit(node)

    def visit_Try(self, node: ast.Try) -> None:
        _check_try(self.path, self.func, node, self.findings)
        self.generic_visit(node)


class _ModuleChecker(ast.NodeVisitor):
    """Walks a module, running the function checker and R005."""

    def __init__(self, path: str, findings: List[Finding]) -> None:
        self.path = path
        self.findings = findings
        self._scope: List[str] = []

    def _qualname(self, name: str) -> str:
        return ".".join(self._scope + [name]) if self._scope else name

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        qual = self._qualname(node.name)
        checker = _FunctionChecker(self.path, qual, self.findings)
        for stmt in node.body:
            checker.visit(stmt)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def visit_Try(self, node: ast.Try) -> None:
        func = ".".join(self._scope) or "<module>"
        _check_try(self.path, func, node, self.findings)
        self.generic_visit(node)


# --------------------------------------------------------------- R003
_MSG_CLASS_RE = re.compile(r"(Msg|Reply)$")


def _check_wire_tags(path: str, tree: ast.Module,
                     findings: List[Finding]) -> None:
    """R003: WIRE_TAGS covers every message class; handler covers Msgs.

    Requests (``*Msg``) must be referenced by the sibling ``handler.py``
    — a request without a handler arm hangs its sender.  Replies
    (``*Reply``) must be referenced by ``handler.py`` *or* the sibling
    ``db.py``: the handler constructs them and the client side consumes
    them, so a reply class neither file mentions is dead wire format.
    """
    classes: Dict[str, int] = {}
    consts: Dict[str, int] = {}
    wire_tags: Optional[Dict[str, object]] = None
    wire_line = 0
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _MSG_CLASS_RE.search(node.name):
            classes[node.name] = node.lineno
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            tgt = node.targets[0]
            if not isinstance(tgt, ast.Name):
                continue
            if (isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)):
                consts[tgt.id] = node.value.value
            elif tgt.id == "WIRE_TAGS" and isinstance(node.value, ast.Dict):
                wire_line = node.lineno
                wire_tags = {}
                for k, v in zip(node.value.keys, node.value.values):
                    if not (isinstance(k, ast.Constant)
                            and isinstance(k.value, str)):
                        continue
                    if (isinstance(v, ast.Constant)
                            and isinstance(v.value, int)):
                        wire_tags[k.value] = v.value
                    elif isinstance(v, ast.Name):
                        wire_tags[k.value] = ("name", v.id)
                    else:
                        wire_tags[k.value] = ("opaque", ast.dump(v))
        elif (isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "WIRE_TAGS"
                and isinstance(node.value, ast.Dict)):
            wire_line = node.lineno
            wire_tags = {}
            for k, v in zip(node.value.keys, node.value.values):
                if not (isinstance(k, ast.Constant)
                        and isinstance(k.value, str)):
                    continue
                if isinstance(v, ast.Constant) and isinstance(v.value, int):
                    wire_tags[k.value] = v.value
                elif isinstance(v, ast.Name):
                    wire_tags[k.value] = ("name", v.id)
                else:
                    wire_tags[k.value] = ("opaque", ast.dump(v))
    if not classes:
        return
    if wire_tags is None:
        findings.append(Finding(
            tool="pkvlint", rule="R003",
            message="messages module defines message classes but no"
                    " WIRE_TAGS literal mapping",
            path=path, line=1, function="<module>",
        ))
        return
    # resolve Name references against earlier module-level int constants
    resolved: Dict[str, Optional[int]] = {}
    for cls, val in wire_tags.items():
        if isinstance(val, int):
            resolved[cls] = val
        elif isinstance(val, tuple) and val[0] == "name":
            resolved[cls] = consts.get(str(val[1]))
        else:
            resolved[cls] = None
    for cls, line in sorted(classes.items(), key=lambda kv: kv[1]):
        if cls not in resolved:
            findings.append(Finding(
                tool="pkvlint", rule="R003",
                message=f"message class `{cls}` has no WIRE_TAGS entry"
                        " — its wire tag is not pinned",
                path=path, line=line, function=cls,
            ))
        elif resolved[cls] is None:
            findings.append(Finding(
                tool="pkvlint", rule="R003",
                message=f"WIRE_TAGS entry for `{cls}` is not a resolvable"
                        " integer constant",
                path=path, line=wire_line, function="WIRE_TAGS",
            ))
    tags_seen: Dict[int, str] = {}
    for cls, tag in sorted(resolved.items()):
        if tag is None:
            continue
        if tag in tags_seen:
            findings.append(Finding(
                tool="pkvlint", rule="R003",
                message=f"WIRE_TAGS value {tag} assigned to both"
                        f" `{tags_seen[tag]}` and `{cls}` — wire tags"
                        " must be unique",
                path=path, line=wire_line, function="WIRE_TAGS",
            ))
        else:
            tags_seen[tag] = cls
    # every request (*Msg) class must appear in the sibling handler
    handler_path = os.path.join(os.path.dirname(path), "handler.py")
    if not os.path.exists(handler_path):
        return
    with open(handler_path, encoding="utf-8") as f:
        handler_src = f.read()
    handler_names: Set[str] = set()
    for node in ast.walk(ast.parse(handler_src)):
        if isinstance(node, ast.Name):
            handler_names.add(node.id)
        elif isinstance(node, ast.Attribute):
            handler_names.add(node.attr)
    for cls, line in sorted(classes.items(), key=lambda kv: kv[1]):
        if cls.endswith("Msg") and cls not in handler_names:
            findings.append(Finding(
                tool="pkvlint", rule="R003",
                message=f"message class `{cls}` is never referenced by"
                        " the handler — requests without a handler arm"
                        " hang their sender",
                path=path, line=line, function=cls,
            ))
    # every response (*Reply) class must be consumed by the handler or
    # the client side (sibling db.py)
    db_path = os.path.join(os.path.dirname(path), "db.py")
    db_names: Set[str] = set()
    if os.path.exists(db_path):
        with open(db_path, encoding="utf-8") as f:
            db_src = f.read()
        for node in ast.walk(ast.parse(db_src)):
            if isinstance(node, ast.Name):
                db_names.add(node.id)
            elif isinstance(node, ast.Attribute):
                db_names.add(node.attr)
    for cls, line in sorted(classes.items(), key=lambda kv: kv[1]):
        if (cls.endswith("Reply") and cls not in handler_names
                and cls not in db_names):
            findings.append(Finding(
                tool="pkvlint", rule="R003",
                message=f"reply class `{cls}` is referenced by neither"
                        " handler.py nor db.py — a reply nobody builds"
                        " or reads is dead wire format",
                path=path, line=line, function=cls,
            ))


# ---------------------------------------------------------- entry points
def lint_file(path: str, src: Optional[str] = None) -> List[Finding]:
    """Lint one file; returns findings after inline suppressions."""
    if src is None:
        with open(path, encoding="utf-8") as f:
            src = f.read()
    try:
        tree = ast.parse(src, filename=path)
    except SyntaxError as exc:
        return [Finding(
            tool="pkvlint", rule="SYNTAX",
            message=f"cannot parse: {exc.msg}",
            path=path, line=exc.lineno or 0, function="<module>",
        )]
    findings: List[Finding] = []
    _ModuleChecker(path, findings).visit(tree)
    if os.path.basename(path) == "messages.py":
        _check_wire_tags(path, tree, findings)
    sup = _suppressions(src)
    if sup:
        findings = [
            f for f in findings
            if f.rule not in sup.get(f.line, ())
        ]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _iter_py(paths: Sequence[str]) -> List[str]:
    out: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git")
                )
                for fn in sorted(files):
                    if fn.endswith(".py"):
                        out.append(os.path.join(root, fn))
        elif p.endswith(".py"):
            out.append(p)
    return out


def lint_paths(paths: Sequence[str],
               allowlist: Optional[str] = None) -> List[Finding]:
    """Lint files/directories; drop findings covered by the allowlist."""
    entries: List[Tuple[str, str]] = []
    if allowlist and os.path.exists(allowlist):
        entries = load_allowlist(allowlist)
    findings: List[Finding] = []
    for path in _iter_py(paths):
        for f in lint_file(path):
            if entries and is_allowed(f, entries):
                continue
            findings.append(f)
    return findings
