"""pkvlint — the project's AST-based static analyzer (v2).

Seven rules, each encoding an invariant of the PapyrusKV runtime that
an ordinary linter cannot know.  Since v2 the lock/persistence rules
are **whole-program**: a call graph over every linted file
(:mod:`repro.analysis.callgraph`) and a flow-sensitive abstract
interpreter (:mod:`repro.analysis.flow`) propagate effects through
helper calls, so invariants split across functions by PRs 5–8 are
still enforced.

``R001``
    No blocking ``Comm`` call (``send``/``recv``/``barrier``/
    collectives) while a registered lock is held — *including* comm
    calls reached through any resolved helper chain (the finding
    carries the call path).
``R002``
    Crash-ordering: every ``os.rename``/``os.replace`` must see an
    earlier fsync (a helper that fsyncs counts), and in persistence
    modules a file opened for writing must reach an
    fsync/``write_ordered`` on every path out of the call-graph root.
``R003``
    ``core/messages.py`` must carry a ``WIRE_TAGS`` literal mapping
    with a unique integer tag per message class, and every ``*Msg``
    class must be referenced by ``core/handler.py``.
``R004``
    Registered locks must be acquired in the canonical order
    (:mod:`repro.analysis.lock_order`) — also through helper calls.
``R005``
    No bare ``except:`` and no silently swallowed ``CorruptionError``.
``R006``
    The wire-protocol state machine extracted from ``WIRE_TAGS`` and
    the handler dispatch must satisfy the checked-in spec
    (``protocol.py`` next to ``messages.py``): retryable messages
    dedup-keyed, ``Replica*``/``Index*`` messages epoch-stamped, every
    request with a reply path, no handler send on the request comm.
``R007``
    Wall-clock values (``time.time``/``monotonic``) must not flow into
    simtime-governed scheduling — through helpers included.

``interprocedural=False`` (CLI ``--lexical``) reverts to the PR-4
per-function behaviour: no call resolution, v1 rules only.  Kept so
the regression fixtures can assert what the lexical checker *misses*.

Suppression: append ``# pkvlint: disable=R00x[,R00y]`` to the flagged
line, or add ``RULE pattern`` entries to an allowlist file (default
``.pkvlint-allow``); patterns match substrings of ``path::function``.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.findings import Finding, is_allowed, load_allowlist
from repro.analysis.flow import (
    COMM_BLOCKING_CALLS,
    Summary,
    _attr_chain,
    called_qualnames,
    check_module,
    compute_summaries,
)
from repro.analysis.protocol import check_protocol

__all__ = ["lint_file", "lint_paths", "COMM_BLOCKING_CALLS"]

_SUPPRESS_RE = re.compile(r"#\s*pkvlint:\s*disable=([A-Z0-9, ]+)")


def _suppressions(src: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule ids disabled on that line."""
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(src.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            out[i] = rules
    return out


def _check_try(path: str, func: str, node: ast.Try,
               findings: List[Finding]) -> None:
    """R005 on one ``try`` statement."""
    for h in node.handlers:
        if h.type is None:
            findings.append(Finding(
                tool="pkvlint",
                rule="R005",
                message="bare `except:` hides corruption and"
                        " cancellation — name the exception",
                path=path, line=h.lineno, function=func,
            ))
        elif _swallows_corruption(h):
            findings.append(Finding(
                tool="pkvlint",
                rule="R005",
                message="`CorruptionError` swallowed with an empty"
                        " handler — corruption must be quarantined"
                        " or re-raised",
                path=path, line=h.lineno, function=func,
            ))


def _swallows_corruption(handler: ast.ExceptHandler) -> bool:
    names: List[str] = []
    t = handler.type
    nodes = t.elts if isinstance(t, ast.Tuple) else [t]
    for n in nodes:
        if n is not None:
            names.append(_attr_chain(n).rsplit(".", 1)[-1])
    if "CorruptionError" not in names:
        return False
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis):
            continue
        return False
    return True


class _HygieneChecker(ast.NodeVisitor):
    """Walks a whole module for R005 (function bodies included)."""

    def __init__(self, path: str, findings: List[Finding]) -> None:
        self.path = path
        self.findings = findings
        self._scope: List[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def visit_Try(self, node: ast.Try) -> None:
        func = ".".join(self._scope) or "<module>"
        _check_try(self.path, func, node, self.findings)
        self.generic_visit(node)


# --------------------------------------------------------------- R003
_MSG_CLASS_RE = re.compile(r"(Msg|Reply)$")


def _check_wire_tags(path: str, tree: ast.Module,
                     findings: List[Finding]) -> None:
    """R003: WIRE_TAGS covers every message class; handler covers Msgs.

    Requests (``*Msg``) must be referenced by the sibling ``handler.py``
    — a request without a handler arm hangs its sender.  Replies
    (``*Reply``) must be referenced by ``handler.py`` *or* the sibling
    ``db.py``: the handler constructs them and the client side consumes
    them, so a reply class neither file mentions is dead wire format.
    """
    classes: Dict[str, int] = {}
    consts: Dict[str, int] = {}
    wire_tags: Optional[Dict[str, object]] = None
    wire_line = 0
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _MSG_CLASS_RE.search(node.name):
            classes[node.name] = node.lineno
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            tgt = node.targets[0]
            if not isinstance(tgt, ast.Name):
                continue
            if (isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)):
                consts[tgt.id] = node.value.value
            elif tgt.id == "WIRE_TAGS" and isinstance(node.value, ast.Dict):
                wire_line = node.lineno
                wire_tags = _parse_wire_dict(node.value)
        elif (isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "WIRE_TAGS"
                and isinstance(node.value, ast.Dict)):
            wire_line = node.lineno
            wire_tags = _parse_wire_dict(node.value)
    if not classes:
        return
    if wire_tags is None:
        findings.append(Finding(
            tool="pkvlint", rule="R003",
            message="messages module defines message classes but no"
                    " WIRE_TAGS literal mapping",
            path=path, line=1, function="<module>",
        ))
        return
    # resolve Name references against earlier module-level int constants
    resolved: Dict[str, Optional[int]] = {}
    for cls, val in wire_tags.items():
        if isinstance(val, int):
            resolved[cls] = val
        elif isinstance(val, tuple) and val[0] == "name":
            resolved[cls] = consts.get(str(val[1]))
        else:
            resolved[cls] = None
    for cls, line in sorted(classes.items(), key=lambda kv: kv[1]):
        if cls not in resolved:
            findings.append(Finding(
                tool="pkvlint", rule="R003",
                message=f"message class `{cls}` has no WIRE_TAGS entry"
                        " — its wire tag is not pinned",
                path=path, line=line, function=cls,
            ))
        elif resolved[cls] is None:
            findings.append(Finding(
                tool="pkvlint", rule="R003",
                message=f"WIRE_TAGS entry for `{cls}` is not a resolvable"
                        " integer constant",
                path=path, line=wire_line, function="WIRE_TAGS",
            ))
    tags_seen: Dict[int, str] = {}
    for cls, tag in sorted(resolved.items()):
        if tag is None:
            continue
        if tag in tags_seen:
            findings.append(Finding(
                tool="pkvlint", rule="R003",
                message=f"WIRE_TAGS value {tag} assigned to both"
                        f" `{tags_seen[tag]}` and `{cls}` — wire tags"
                        " must be unique",
                path=path, line=wire_line, function="WIRE_TAGS",
            ))
        else:
            tags_seen[tag] = cls
    # every request (*Msg) class must appear in the sibling handler
    handler_path = os.path.join(os.path.dirname(path), "handler.py")
    if not os.path.exists(handler_path):
        return
    handler_names = _referenced_names(handler_path)
    for cls, line in sorted(classes.items(), key=lambda kv: kv[1]):
        if cls.endswith("Msg") and cls not in handler_names:
            findings.append(Finding(
                tool="pkvlint", rule="R003",
                message=f"message class `{cls}` is never referenced by"
                        " the handler — requests without a handler arm"
                        " hang their sender",
                path=path, line=line, function=cls,
            ))
    # every response (*Reply) class must be consumed by the handler or
    # the client side (sibling db.py)
    db_path = os.path.join(os.path.dirname(path), "db.py")
    db_names: Set[str] = set()
    if os.path.exists(db_path):
        db_names = _referenced_names(db_path)
    for cls, line in sorted(classes.items(), key=lambda kv: kv[1]):
        if (cls.endswith("Reply") and cls not in handler_names
                and cls not in db_names):
            findings.append(Finding(
                tool="pkvlint", rule="R003",
                message=f"reply class `{cls}` is referenced by neither"
                        " handler.py nor db.py — a reply nobody builds"
                        " or reads is dead wire format",
                path=path, line=line, function=cls,
            ))


def _parse_wire_dict(node: ast.Dict) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for k, v in zip(node.keys, node.values):
        if not (isinstance(k, ast.Constant) and isinstance(k.value, str)):
            continue
        if isinstance(v, ast.Constant) and isinstance(v.value, int):
            out[k.value] = v.value
        elif isinstance(v, ast.Name):
            out[k.value] = ("name", v.id)
        else:
            out[k.value] = ("opaque", ast.dump(v))
    return out


def _referenced_names(path: str) -> Set[str]:
    with open(path, encoding="utf-8") as f:
        src = f.read()
    names: Set[str] = set()
    try:
        tree = ast.parse(src)
    except SyntaxError:
        return names
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


# ---------------------------------------------------------- entry points
def _parse(path: str, src: str) -> Tuple[Optional[ast.Module],
                                         List[Finding]]:
    try:
        return ast.parse(src, filename=path), []
    except SyntaxError as exc:
        return None, [Finding(
            tool="pkvlint", rule="SYNTAX",
            message=f"cannot parse: {exc.msg}",
            path=path, line=exc.lineno or 0, function="<module>",
        )]


def _lint_tree(path: str, src: str, tree: ast.Module,
               graph: Optional[CallGraph],
               summaries: Dict[str, Summary],
               called: Set[str]) -> List[Finding]:
    """All rules over one parsed module, inline suppressions applied."""
    findings = check_module(path, tree, graph, summaries, called)
    _HygieneChecker(path, findings).visit(tree)
    if os.path.basename(path) == "messages.py":
        _check_wire_tags(path, tree, findings)
        findings.extend(check_protocol(path, tree))
    sup = _suppressions(src)
    if sup:
        findings = [
            f for f in findings
            if f.rule not in sup.get(f.line, ())
        ]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_file(path: str, src: Optional[str] = None,
              interprocedural: bool = True) -> List[Finding]:
    """Lint one file; returns findings after inline suppressions.

    With ``interprocedural=True`` (the default) a single-file call
    graph is built, so same-file helper chains still resolve;
    ``interprocedural=False`` is the PR-4 lexical behaviour.
    """
    if src is None:
        with open(path, encoding="utf-8") as f:
            src = f.read()
    tree, errs = _parse(path, src)
    if tree is None:
        return errs
    graph: Optional[CallGraph] = None
    summaries: Dict[str, Summary] = {}
    called: Set[str] = set()
    if interprocedural:
        graph = build_call_graph([(path, tree)])
        summaries = compute_summaries(graph)
        called = called_qualnames(graph)
    return _lint_tree(path, src, tree, graph, summaries, called)


def _iter_py(paths: Sequence[str]) -> List[str]:
    out: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git")
                )
                for fn in sorted(files):
                    if fn.endswith(".py"):
                        out.append(os.path.join(root, fn))
        elif p.endswith(".py"):
            out.append(p)
    return out


def lint_paths(paths: Sequence[str],
               allowlist: Optional[str] = None,
               interprocedural: bool = True) -> List[Finding]:
    """Lint files/directories as one program.

    Every file is parsed once, the project-wide call graph and
    summaries are computed over the whole set, and each module is then
    checked against them — a helper chain crossing module boundaries
    (``handler.py`` → ``db.py``) resolves like a local call.  Findings
    covered by the allowlist are dropped.
    """
    entries: List[Tuple[str, str]] = []
    if allowlist and os.path.exists(allowlist):
        entries = load_allowlist(allowlist)
    parsed: List[Tuple[str, str, Optional[ast.Module]]] = []
    findings: List[Finding] = []
    for path in _iter_py(paths):
        with open(path, encoding="utf-8") as f:
            src = f.read()
        tree, errs = _parse(path, src)
        findings.extend(errs)
        parsed.append((path, src, tree))
    graph: Optional[CallGraph] = None
    summaries: Dict[str, Summary] = {}
    called: Set[str] = set()
    if interprocedural:
        graph = build_call_graph(
            [(p, t) for p, _s, t in parsed if t is not None]
        )
        summaries = compute_summaries(graph)
        called = called_qualnames(graph)
    for path, src, tree in parsed:
        if tree is None:
            continue
        findings.extend(
            _lint_tree(path, src, tree, graph, summaries, called)
        )
    if entries:
        findings = [f for f in findings if not is_allowed(f, entries)]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
