"""A common finding record for every analyzer in this package.

Both the static linter (pkvlint) and the dynamic detectors (race,
lock-order, deadlock) report :class:`Finding` objects, so the CLI,
the CI job, and the allowlist machinery handle one shape.

The JSON schema (``docs/analysis.md``) is version **2**::

    {"version": 2,
     "findings": [{"tool": "...", "rule": "...", "message": "...",
                   "path": "...", "line": 0, "function": "...",
                   "call_path": ["..."], "details": ["..."]}, ...]}

Version 1 (PR 4) lacked ``call_path`` — the interprocedural call chain
a whole-program rule walked to reach the violation.  :func:`load_doc`
accepts both versions; :func:`migrate_doc` converts v1 → v2 and
:func:`downgrade_doc` v2 → v1, so consumers pinned to either schema
keep working (``race-report`` still emits v1: its findings never carry
call chains).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple, Union

#: schema version emitted by findings_to_json by default
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class Finding:
    """One analyzer result.

    ``tool`` names the layer (``pkvlint``, ``race``, ``lock-order``,
    ``deadlock``); ``rule`` is the stable rule id (``R001``..``R007``
    for lint, ``RACE``/``LOCK_ORDER``/``DEADLOCK`` for the dynamic
    plane).  ``details`` carries acquisition/access stacks.
    ``call_path`` (schema v2) carries the interprocedural chain an
    whole-program rule followed from the flagged site to the violating
    operation — empty for purely local findings.
    """

    tool: str
    rule: str
    message: str
    path: str = ""
    line: int = 0
    function: str = ""
    details: Tuple[str, ...] = field(default_factory=tuple)
    call_path: Tuple[str, ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, stable key order for JSON output (v2)."""
        return {
            "tool": self.tool,
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "function": self.function,
            "call_path": list(self.call_path),
            "details": list(self.details),
        }

    def render(self) -> str:
        """One-line human-readable form (``path:line: RULE message``)."""
        where = f"{self.path}:{self.line}" if self.path else self.tool
        fn = f" [{self.function}]" if self.function else ""
        base = f"{where}: {self.rule}{fn} {self.message}"
        if self.call_path:
            base += "\n    via " + " -> ".join(self.call_path)
        return base


def finding_from_dict(d: Dict[str, Any]) -> Finding:
    """Rebuild a :class:`Finding` from its dict form (v1 or v2)."""
    return Finding(
        tool=str(d.get("tool", "")),
        rule=str(d.get("rule", "")),
        message=str(d.get("message", "")),
        path=str(d.get("path", "")),
        line=int(d.get("line", 0)),
        function=str(d.get("function", "")),
        details=tuple(str(x) for x in d.get("details", ())),
        call_path=tuple(str(x) for x in d.get("call_path", ())),
    )


def findings_to_json(findings: Sequence[Finding],
                     version: int = SCHEMA_VERSION) -> str:
    """Serialize findings to the machine-readable schema.

    ``version=2`` (the default) includes ``call_path``; ``version=1``
    reproduces the PR-4 schema exactly for pinned consumers.
    """
    if version == 1:
        docs = []
        for f in findings:
            d = f.to_dict()
            d.pop("call_path")
            docs.append(d)
        doc: Dict[str, Any] = {"version": 1, "findings": docs}
    elif version == SCHEMA_VERSION:
        doc = {
            "version": SCHEMA_VERSION,
            "findings": [f.to_dict() for f in findings],
        }
    else:
        raise ValueError(f"unknown findings schema version {version}")
    return json.dumps(doc, indent=2, sort_keys=False)


# ------------------------------------------------------- schema migration
def migrate_doc(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Upgrade a findings document to schema v2 (idempotent).

    A v1 finding simply gains an empty ``call_path``; a v2 document is
    returned unchanged (same object).  Raises on unknown versions so a
    future v3 never silently round-trips through this shim.
    """
    version = doc.get("version")
    if version == SCHEMA_VERSION:
        return doc
    if version != 1:
        raise ValueError(f"cannot migrate findings schema v{version!r}")
    return {
        "version": SCHEMA_VERSION,
        "findings": [
            dict(f, call_path=list(f.get("call_path", [])))
            for f in doc.get("findings", [])
        ],
    }


def downgrade_doc(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Project a findings document down to schema v1 (idempotent).

    ``call_path`` entries are folded into ``details`` (prefixed
    ``via:``) so no information silently vanishes for v1 consumers.
    """
    version = doc.get("version")
    if version == 1:
        return doc
    if version != SCHEMA_VERSION:
        raise ValueError(f"cannot downgrade findings schema v{version!r}")
    out = []
    for f in doc.get("findings", []):
        d = {k: v for k, v in f.items() if k != "call_path"}
        chain = f.get("call_path") or []
        if chain:
            d["details"] = list(f.get("details", [])) + [
                "via: " + " -> ".join(chain)
            ]
        out.append(d)
    return {"version": 1, "findings": out}


def load_doc(text_or_doc: Union[str, Dict[str, Any]]) -> List[Finding]:
    """Parse a findings document of either schema version.

    Accepts the JSON text or an already-parsed dict; always returns
    :class:`Finding` objects (v1 findings get empty call paths).
    """
    doc = (json.loads(text_or_doc) if isinstance(text_or_doc, str)
           else text_or_doc)
    doc = migrate_doc(doc)
    return [finding_from_dict(f) for f in doc.get("findings", [])]


def load_allowlist(path: str) -> List[Tuple[str, str]]:
    """Parse an allowlist file into ``(rule, pattern)`` entries.

    Each non-comment line reads ``RULE pattern`` where ``pattern``
    matches either ``path::function`` or a path substring.  Lines
    starting with ``#`` and blank lines are ignored.
    """
    entries: List[Tuple[str, str]] = []
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                continue
            entries.append((parts[0], parts[1].strip()))
    return entries


def is_allowed(finding: Finding, allowlist: Sequence[Tuple[str, str]]) -> bool:
    """True when an allowlist entry covers this finding.

    An entry matches when its rule equals the finding's rule and its
    pattern is a substring of ``path::function`` (so both bare paths
    and fully qualified sites work).
    """
    site = f"{finding.path}::{finding.function}"
    for rule, pattern in allowlist:
        if rule == finding.rule and pattern in site:
            return True
    return False
