"""A common finding record for every analyzer in this package.

Both the static linter (pkvlint) and the dynamic detectors (race,
lock-order, deadlock) report :class:`Finding` objects, so the CLI,
the CI job, and the allowlist machinery handle one shape.

The JSON schema (``docs/analysis.md``) is::

    {"version": 1,
     "findings": [{"tool": "...", "rule": "...", "message": "...",
                   "path": "...", "line": 0, "function": "...",
                   "details": ["..."]}, ...]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Finding:
    """One analyzer result.

    ``tool`` names the layer (``pkvlint``, ``race``, ``lock-order``,
    ``deadlock``); ``rule`` is the stable rule id (``R001``..``R005``
    for lint, ``RACE``/``LOCK_ORDER``/``DEADLOCK`` for the dynamic
    plane).  ``details`` carries acquisition/access stacks.
    """

    tool: str
    rule: str
    message: str
    path: str = ""
    line: int = 0
    function: str = ""
    details: Tuple[str, ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, stable key order for JSON output."""
        return {
            "tool": self.tool,
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "function": self.function,
            "details": list(self.details),
        }

    def render(self) -> str:
        """One-line human-readable form (``path:line: RULE message``)."""
        where = f"{self.path}:{self.line}" if self.path else self.tool
        fn = f" [{self.function}]" if self.function else ""
        return f"{where}: {self.rule}{fn} {self.message}"


def findings_to_json(findings: Sequence[Finding]) -> str:
    """Serialize findings to the machine-readable schema (version 1)."""
    doc = {
        "version": 1,
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(doc, indent=2, sort_keys=False)


def load_allowlist(path: str) -> List[Tuple[str, str]]:
    """Parse an allowlist file into ``(rule, pattern)`` entries.

    Each non-comment line reads ``RULE pattern`` where ``pattern``
    matches either ``path::function`` or a path substring.  Lines
    starting with ``#`` and blank lines are ignored.
    """
    entries: List[Tuple[str, str]] = []
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                continue
            entries.append((parts[0], parts[1].strip()))
    return entries


def is_allowed(finding: Finding, allowlist: Sequence[Tuple[str, str]]) -> bool:
    """True when an allowlist entry covers this finding.

    An entry matches when its rule equals the finding's rule and its
    pattern is a substring of ``path::function`` (so both bare paths
    and fully qualified sites work).
    """
    site = f"{finding.path}::{finding.function}"
    for rule, pattern in allowlist:
        if rule == finding.rule and pattern in site:
            return True
    return False
