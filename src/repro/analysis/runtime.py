"""Opt-in dynamic race, lock-order, and deadlock detection.

A single process-wide :class:`RaceDetector` (enabled via
``Options(race_detect=True)`` or ``PKV_RACE_DETECT=1``) drives three
checks over the threaded SPMD runtime:

* **data races** — a FastTrack-style vector-clock happens-before
  detector over explicitly annotated shared locations (MemTables, LRU
  caches, the SSTable-reader cache, ...).  Happens-before edges come
  from tracked lock release→acquire, ``Comm`` send→receive, collective
  barriers, bounded-queue hand-off, and thread join;
* **lock-order violations** — every tracked acquisition is checked
  against the canonical order in :mod:`repro.analysis.lock_order`;
* **potential deadlocks** — nested acquisitions feed a per-instance
  lock graph whose cycles are reported with both acquisition stacks.

When the detector is disabled (the default) every hook is one global
``None`` check, so instrumented code paths stay effectively free.

Detection is schedule-insensitive where it matters: two accesses race
iff no happens-before chain orders them, so a race is reported even
when the physical interleaving happened to be benign in this run.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.analysis.deadlock import LockGraph
from repro.analysis.findings import Finding
from repro.analysis.lock_order import level_of
from repro.analysis.vector_clock import (
    Clock,
    Epoch,
    epoch_of,
    fresh_clock,
    happens_before,
    merge_into,
)

__all__ = [
    "RaceDetector",
    "TrackedLock",
    "TrackedRLock",
    "get_detector",
    "enable",
    "disable",
    "maybe_enable_from_env",
    "make_lock",
    "make_rlock",
    "annotate_read",
    "annotate_write",
]

#: environment switch honoured by :func:`maybe_enable_from_env`
ENV_VAR = "PKV_RACE_DETECT"

#: the process-wide detector; ``None`` means every hook is free
_DETECTOR: Optional["RaceDetector"] = None

_SELF_FILES = (os.sep + "analysis" + os.sep + "runtime.py",
               os.sep + "threading.py")


def _site(limit: int = 2) -> str:
    """A short ``file:line in func`` stack of the instrumented caller."""
    frames: List[str] = []
    depth = 2
    while len(frames) < limit:
        try:
            f = sys._getframe(depth)
        except ValueError:
            break
        depth += 1
        fname = f.f_code.co_filename
        if fname.endswith(_SELF_FILES):
            continue
        short = fname
        for marker in (os.sep + "src" + os.sep, os.sep + "tests" + os.sep):
            i = fname.rfind(marker)
            if i >= 0:
                short = fname[i + 1:]
                break
        frames.append(f"{short}:{f.f_lineno} in {f.f_code.co_name}")
    return " <- ".join(frames) if frames else "<unknown>"


@dataclass
class _Location:
    """Per-shared-location access history."""

    name: str
    write: Optional[Epoch] = None
    write_site: str = ""
    #: reader tid -> (tick, site)
    reads: Dict[int, Tuple[int, str]] = field(default_factory=dict)


class _ThreadState:
    """Per-thread detector state (vector clock + held tracked locks)."""

    __slots__ = ("tid", "clock", "held")

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.clock: Clock = fresh_clock(tid)
        #: stack of (lock, acquisition site), outermost first
        self.held: List[Tuple["_TrackedBase", str]] = []


class _TrackedBase:
    """Shared plumbing of :class:`TrackedLock` / :class:`TrackedRLock`."""

    _serials = [0]
    _serial_lock = threading.Lock()

    def __init__(self, inner: Any, name: str) -> None:
        self._inner = inner
        self.name = name
        self.level = level_of(name)
        with _TrackedBase._serial_lock:
            _TrackedBase._serials[0] += 1
            serial = _TrackedBase._serials[0]
        self.label = f"{name}#{serial}"
        #: clock transferred release -> next acquire
        self._vc: Clock = {}
        self._owner: Optional[int] = None
        self._count = 0

    # -- context manager -------------------------------------------------
    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    # -- Condition compatibility ----------------------------------------
    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = bool(self._inner.acquire(blocking, timeout))
        if ok:
            first = self._owner != threading.get_ident() or self._count == 0
            self._owner = threading.get_ident()
            self._count += 1
            det = _DETECTOR
            if det is not None and first:
                det.on_acquired(self)
        return ok

    def release(self) -> None:
        if self._count == 1:
            det = _DETECTOR
            if det is not None:
                det.on_release(self)
            self._owner = None
        self._count -= 1
        self._inner.release()

    def locked(self) -> bool:
        return self._count > 0


class TrackedLock(_TrackedBase):
    """A ``threading.Lock`` that feeds the race/deadlock detector."""

    def __init__(self, name: str) -> None:
        super().__init__(threading.Lock(), name)


class TrackedRLock(_TrackedBase):
    """A ``threading.RLock`` that feeds the race/deadlock detector.

    Re-entrant acquisitions are tracked (only the outermost acquire and
    the final release create happens-before edges and order checks).
    """

    def __init__(self, name: str) -> None:
        super().__init__(threading.RLock(), name)


class RaceDetector:
    """The process-wide dynamic checker (see module docstring)."""

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._tls = threading.local()
        self._next_tid = [0]
        self._locations: Dict[Tuple[int, str], _Location] = {}
        self._next_tag = [0]
        self._barriers: Dict[Any, Clock] = {}
        self._final: Dict[Any, Clock] = {}
        self.graph = LockGraph()
        self._findings: List[Finding] = []
        self._seen: Set[Tuple[str, ...]] = set()
        #: counters for metrics/reporting
        self.counts: Dict[str, int] = {
            "reads": 0, "writes": 0, "acquires": 0, "sends": 0,
            "recvs": 0, "barriers": 0, "handoffs": 0,
        }

    # ------------------------------------------------------------ threads
    def _state(self) -> _ThreadState:
        st = getattr(self._tls, "st", None)
        if st is None:
            with self._mu:
                self._next_tid[0] += 1
                st = _ThreadState(self._next_tid[0])
            self._tls.st = st
        return st

    def _tick(self, st: _ThreadState) -> None:
        st.clock[st.tid] = st.clock.get(st.tid, 0) + 1

    def finalize_thread(self) -> None:
        """Publish the calling thread's final clock for a later join."""
        st = self._state()
        with self._mu:
            self._final[threading.current_thread()] = dict(st.clock)

    def absorb_thread(self, thread: Any) -> None:
        """Join edge: merge a finished thread's clock into the caller's."""
        st = self._state()
        with self._mu:
            vc = self._final.pop(thread, None)
            if vc is not None:
                merge_into(st.clock, vc)

    # -------------------------------------------------------------- locks
    def on_acquired(self, lock: _TrackedBase) -> None:
        """Order check, deadlock-graph edge, and HB join on acquire."""
        st = self._state()
        site = _site()
        with self._mu:
            self.counts["acquires"] += 1
            if st.held:
                held_lock, held_site = st.held[-1]
                self.graph.add_edge(
                    held_lock.label, lock.label, held_site, site
                )
                for h, hsite in st.held:
                    if (lock.level is not None and h.level is not None
                            and lock.level < h.level):
                        self._report(Finding(
                            tool="lock-order",
                            rule="LOCK_ORDER",
                            message=(
                                f"acquired {lock.name} (level {lock.level})"
                                f" while holding {h.name} (level {h.level})"
                                " — violates the canonical order"
                            ),
                            function=site,
                            details=(f"{h.name} held at {hsite}",
                                     f"{lock.name} acquired at {site}"),
                        ), key=("order", h.name, lock.name, site))
            st.held.append((lock, site))
            merge_into(st.clock, lock._vc)

    def on_release(self, lock: _TrackedBase) -> None:
        """Publish the releaser's clock on the lock (HB edge source)."""
        st = self._state()
        with self._mu:
            for i in range(len(st.held) - 1, -1, -1):
                if st.held[i][0] is lock:
                    del st.held[i]
                    break
            lock._vc = dict(st.clock)
            self._tick(st)

    # -------------------------------------------------------- annotations
    def _tag_of(self, owner: Any) -> int:
        tag = getattr(owner, "_race_tag", None)
        if tag is None:
            self._next_tag[0] += 1
            tag = self._next_tag[0]
            try:
                owner._race_tag = tag
            except (AttributeError, TypeError):
                # owner cannot carry the tag; fall back to its id (the
                # object must then outlive the run to stay unique)
                tag = id(owner)
        return int(tag)

    def on_access(self, owner: Any, name: str, is_write: bool) -> None:
        """FastTrack read/write check on one annotated shared location."""
        st = self._state()
        with self._mu:
            key = (self._tag_of(owner), name)
            loc = self._locations.get(key)
            if loc is None:
                loc = self._locations[key] = _Location(name)
            clock = st.clock
            site = _site()
            if is_write:
                self.counts["writes"] += 1
                if (loc.write is not None
                        and not happens_before(loc.write, clock)):
                    self._race(loc, "write", "write", loc.write_site, site,
                               loc.write[0], st.tid)
                for tid, (tick, rsite) in loc.reads.items():
                    if tid != st.tid and not happens_before(
                            (tid, tick), clock):
                        self._race(loc, "read", "write", rsite, site,
                                   tid, st.tid)
                loc.write = epoch_of(st.tid, clock)
                loc.write_site = site
                loc.reads.clear()
            else:
                self.counts["reads"] += 1
                if (loc.write is not None and loc.write[0] != st.tid
                        and not happens_before(loc.write, clock)):
                    self._race(loc, "write", "read", loc.write_site, site,
                               loc.write[0], st.tid)
                loc.reads[st.tid] = (clock.get(st.tid, 0), site)

    def _race(self, loc: _Location, prior_kind: str, kind: str,
              prior_site: str, site: str, prior_tid: int,
              tid: int) -> None:
        key = ("race", loc.name, min(prior_site, site),
               max(prior_site, site))
        self._report(Finding(
            tool="race",
            rule="RACE",
            message=(
                f"data race on {loc.name}: {prior_kind} by thread "
                f"{prior_tid} not ordered before {kind} by thread {tid}"
            ),
            function=site,
            details=(f"prior {prior_kind} at {prior_site}",
                     f"racing {kind} at {site}"),
        ), key=key)

    # ----------------------------------------------------------- messages
    def on_send(self, env: Any) -> None:
        """Attach the sender's clock to an envelope (send→recv edge)."""
        st = self._state()
        with self._mu:
            self.counts["sends"] += 1
            env._race_vc = dict(st.clock)
            self._tick(st)

    def on_recv(self, env: Any) -> None:
        """Join the sender's clock on message receipt."""
        vc = getattr(env, "_race_vc", None)
        if vc is None:
            return
        st = self._state()
        with self._mu:
            self.counts["recvs"] += 1
            merge_into(st.clock, vc)

    # ----------------------------------------------------------- barriers
    def on_barrier_arrive(self, key: Any) -> None:
        """Merge the caller's clock into the barrier's accumulator."""
        st = self._state()
        with self._mu:
            acc = self._barriers.get(key)
            if acc is None:
                acc = self._barriers[key] = {}
            merge_into(acc, st.clock)

    def on_barrier_depart(self, key: Any) -> None:
        """Join the accumulated clock after the rendezvous."""
        st = self._state()
        with self._mu:
            self.counts["barriers"] += 1
            acc = self._barriers.get(key)
            if acc is not None:
                merge_into(st.clock, acc)
            self._tick(st)

    # ------------------------------------------------------ queue handoff
    def on_handoff_send(self) -> Clock:
        """Snapshot the producer's clock for a queued item."""
        st = self._state()
        with self._mu:
            self.counts["handoffs"] += 1
            vc = dict(st.clock)
            self._tick(st)
            return vc

    def on_handoff_recv(self, vc: Optional[Clock]) -> None:
        """Join the producer's clock at the consumer."""
        if not vc:
            return
        st = self._state()
        with self._mu:
            merge_into(st.clock, vc)

    # ------------------------------------------------------------ results
    def _report(self, finding: Finding, key: Tuple[str, ...]) -> None:
        if key in self._seen:
            return
        self._seen.add(key)
        self._findings.append(finding)

    def findings(self) -> List[Finding]:
        """Race + lock-order findings plus current deadlock cycles."""
        return list(self._findings) + self.graph.deadlock_findings()

    def clear_findings(self) -> None:
        """Drop accumulated findings and the deadlock graph."""
        with self._mu:
            self._findings.clear()
            self._seen.clear()
            self.graph = LockGraph()

    def run_start(self) -> None:
        """Prune per-run state (called at every ``spmd_run`` start).

        Locations and barrier accumulators belong to the finished run's
        objects; findings and the lock graph persist until read.
        """
        with self._mu:
            self._locations.clear()
            self._barriers.clear()
            self._final.clear()

    def summary(self) -> Dict[str, Union[int, bool]]:
        """Small counter block for ``repro.metrics``."""
        with self._mu:
            return {
                "enabled": True,
                "locations": len(self._locations),
                "findings": len(self._findings),
                **self.counts,
            }

    def report(self) -> Dict[str, Any]:
        """Machine-readable report (the ``race-report`` schema)."""
        fs = self.findings()
        return {
            "version": 1,
            "summary": self.summary(),
            "findings": [f.to_dict() for f in fs],
        }


# ------------------------------------------------------------- module API
def get_detector() -> Optional[RaceDetector]:
    """The active detector, or ``None`` when detection is off."""
    return _DETECTOR


def enable(reset: bool = False) -> RaceDetector:
    """Turn detection on (idempotent); ``reset`` forces a fresh one."""
    global _DETECTOR
    if _DETECTOR is None or reset:
        _DETECTOR = RaceDetector()
    return _DETECTOR


def disable() -> Optional[RaceDetector]:
    """Turn detection off; returns the detector for inspection."""
    global _DETECTOR
    det = _DETECTOR
    _DETECTOR = None
    return det


def restore(det: Optional[RaceDetector]) -> None:
    """Reinstall a previously active detector (test fixtures)."""
    global _DETECTOR
    _DETECTOR = det


def maybe_enable_from_env() -> Optional[RaceDetector]:
    """Enable iff ``PKV_RACE_DETECT`` is set to a non-zero value."""
    if _DETECTOR is None and os.environ.get(ENV_VAR, "") not in ("", "0"):
        return enable()
    return _DETECTOR


def make_lock(name: str) -> TrackedLock:
    """An instrumented ``threading.Lock`` named in the canonical order."""
    return TrackedLock(name)


def make_rlock(name: str) -> TrackedRLock:
    """An instrumented ``threading.RLock`` named in the canonical order."""
    return TrackedRLock(name)


def annotate_read(owner: Any, name: str) -> None:
    """Record a read of a shared location (no-op when disabled)."""
    det = _DETECTOR
    if det is not None:
        det.on_access(owner, name, is_write=False)


def annotate_write(owner: Any, name: str) -> None:
    """Record a write of a shared location (no-op when disabled)."""
    det = _DETECTOR
    if det is not None:
        det.on_access(owner, name, is_write=True)
