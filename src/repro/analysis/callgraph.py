"""Project-wide call graph for the whole-program lint rules.

PR 4's pkvlint saw one function at a time; PRs 5–8 spread the runtime's
invariants across helper chains (``Database._fence`` →
``_drain_acks`` → ``Comm.recv``), which a per-function walker cannot
see.  This module parses every file handed to the linter once, indexes
the functions it finds, and resolves call expressions to project
functions so :mod:`repro.analysis.flow` can propagate effects
(blocking communication, lock acquisition, fsync, wall-clock taint)
through calls.

Resolution is deliberately conservative — precision over recall, since
findings must be fixable, not allowlisted:

* ``self.m(...)`` / ``cls.m(...)`` resolve within the receiver's class
  (walking project-local base classes by name);
* ``f(...)`` resolves to a same-module function or a
  ``from mod import f`` import of another linted module;
* ``mod.f(...)`` resolves through ``import repro.x as mod`` aliases;
* ``obj.m(...)`` resolves **only** when ``obj`` is a parameter whose
  annotation names a project class (the handler's ``db: Database``
  pattern); every other attribute receiver is dynamic dispatch and
  stays unresolved.

Unresolved calls are simply absent from the graph: the flow rules then
treat them as effect-free, which is the documented blind spot (see
``docs/analysis.md``).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["FunctionInfo", "CallGraph", "build_call_graph"]


@dataclass
class FunctionInfo:
    """One function or method known to the project call graph."""

    qualname: str               # "module:Class.method" or "module:func"
    path: str
    module: str                 # dotted module name derived from the path
    name: str                   # bare function name
    cls: Optional[str]          # owning class, None for module level
    node: ast.AST               # the FunctionDef / AsyncFunctionDef
    lineno: int
    #: parameter name -> annotated project class name (best effort)
    param_classes: Dict[str, str] = field(default_factory=dict)


@dataclass
class _ModuleIndex:
    """Per-module name tables used during call resolution."""

    path: str
    module: str
    #: bare function name -> qualname (module-level defs)
    functions: Dict[str, str] = field(default_factory=dict)
    #: class name -> {method name -> qualname}
    classes: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: class name -> base class names (as written)
    bases: Dict[str, List[str]] = field(default_factory=dict)
    #: local alias -> imported module dotted name (``import x.y as z``)
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (source module, original name)  (``from m import f``)
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)


def module_name_for(path: str) -> str:
    """Dotted module name for a source path (best effort).

    ``src/repro/core/db.py`` → ``repro.core.db``; paths outside a
    recognizable package root fall back to their basename, which keeps
    single-file fixtures resolvable.
    """
    norm = os.path.normpath(path).replace(os.sep, "/")
    base = norm[:-3] if norm.endswith(".py") else norm
    parts = base.split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p) or os.path.basename(base)


def _annotation_class(node: Optional[ast.expr]) -> Optional[str]:
    """The class name an annotation refers to (``Database``,
    ``"Database"``, ``core.db.Database`` all yield ``Database``)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1] or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Optional[Database] etc.
        if (isinstance(node.value, ast.Name)
                and node.value.id in ("Optional",)):
            return _annotation_class(node.slice)
    return None


class CallGraph:
    """Function index + call resolution over one set of linted files."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.modules: Dict[str, _ModuleIndex] = {}       # module -> index
        self._paths: Dict[str, str] = {}                 # path -> module
        #: class name -> modules defining it (cross-module self fallback)
        self._class_sites: Dict[str, List[str]] = {}

    # ------------------------------------------------------------- building
    def add_module(self, path: str, tree: ast.Module) -> None:
        """Index one parsed module's functions, classes, and imports."""
        module = module_name_for(path)
        idx = _ModuleIndex(path=path, module=module)
        self.modules[module] = idx
        self._paths[path] = module
        for node in tree.body:
            self._index_stmt(idx, node, cls=None)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    idx.module_aliases[alias.asname or
                                       alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    idx.from_imports[alias.asname or alias.name] = (
                        node.module, alias.name
                    )

    def _index_stmt(self, idx: _ModuleIndex, node: ast.stmt,
                    cls: Optional[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = (f"{idx.module}:{cls}.{node.name}" if cls
                    else f"{idx.module}:{node.name}")
            params: Dict[str, str] = {}
            for arg in list(node.args.posonlyargs) + list(node.args.args) \
                    + list(node.args.kwonlyargs):
                klass = _annotation_class(arg.annotation)
                if klass:
                    params[arg.arg] = klass
            info = FunctionInfo(
                qualname=qual, path=idx.path, module=idx.module,
                name=node.name, cls=cls, node=node, lineno=node.lineno,
                param_classes=params,
            )
            self.functions[qual] = info
            if cls is None:
                idx.functions[node.name] = qual
            else:
                idx.classes.setdefault(cls, {})[node.name] = qual
        elif isinstance(node, ast.ClassDef):
            idx.classes.setdefault(node.name, {})
            idx.bases[node.name] = [
                b.attr if isinstance(b, ast.Attribute)
                else b.id if isinstance(b, ast.Name) else ""
                for b in node.bases
            ]
            self._class_sites.setdefault(node.name, []).append(idx.module)
            for sub in node.body:
                self._index_stmt(idx, sub, cls=node.name)

    # ----------------------------------------------------------- resolution
    def _method_in_class(
        self, module: str, cls: str, name: str,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[str]:
        """Find ``cls.name`` in ``module``, walking project-local bases."""
        seen = _seen if _seen is not None else set()
        if (module, cls) in seen:
            return None
        seen.add((module, cls))
        idx = self.modules.get(module)
        if idx is None or cls not in idx.classes:
            # the class may be defined in another linted module
            for site in self._class_sites.get(cls, []):
                if site != module:
                    hit = self._method_in_class(site, cls, name, seen)
                    if hit:
                        return hit
            return None
        qual = idx.classes[cls].get(name)
        if qual:
            return qual
        for base in idx.bases.get(cls, []):
            if not base:
                continue
            hit = self._method_in_class(module, base, name, seen)
            if hit:
                return hit
        return None

    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call) -> List[FunctionInfo]:
        """Project functions a call expression may invoke (possibly [])."""
        quals = self._resolve_quals(caller, call.func)
        return [self.functions[q] for q in quals if q in self.functions]

    def _resolve_quals(self, caller: FunctionInfo,
                       fn: ast.expr) -> List[str]:
        idx = self.modules.get(caller.module)
        if idx is None:
            return []
        if isinstance(fn, ast.Name):
            # same-module function, or a from-import of a linted module
            qual = idx.functions.get(fn.id)
            if qual:
                return [qual]
            imp = idx.from_imports.get(fn.id)
            if imp:
                src_mod, orig = imp
                for mod in self._matching_modules(src_mod):
                    target = self.modules[mod].functions.get(orig)
                    if target:
                        return [target]
            return []
        if not isinstance(fn, ast.Attribute):
            return []
        recv = fn.value
        method = fn.attr
        if isinstance(recv, ast.Name):
            if recv.id in ("self", "cls") and caller.cls is not None:
                hit = self._method_in_class(caller.module, caller.cls, method)
                return [hit] if hit else []
            # annotated parameter: def _serve(db: Database, ...) -> db.m()
            klass = caller.param_classes.get(recv.id)
            if klass:
                hit = self._method_in_class(caller.module, klass, method)
                return [hit] if hit else []
            # module alias: import repro.core.scan as scan -> scan.f()
            target_mod = idx.module_aliases.get(recv.id)
            if target_mod:
                for mod in self._matching_modules(target_mod):
                    qual = self.modules[mod].functions.get(method)
                    if qual:
                        return [qual]
            # from repro.core import scan -> scan.f()
            imp = idx.from_imports.get(recv.id)
            if imp:
                dotted = f"{imp[0]}.{imp[1]}"
                for mod in self._matching_modules(dotted):
                    qual = self.modules[mod].functions.get(method)
                    if qual:
                        return [qual]
        return []

    def _matching_modules(self, dotted: str) -> List[str]:
        """Linted modules matching an imported dotted name (suffix-wise)."""
        if dotted in self.modules:
            return [dotted]
        tail = dotted.rsplit(".", 1)[-1]
        return [m for m in self.modules
                if m == tail or m.endswith("." + tail)]


def build_call_graph(trees: Sequence[Tuple[str, ast.Module]]) -> CallGraph:
    """Build the call graph over ``(path, parsed module)`` pairs."""
    cg = CallGraph()
    for path, tree in trees:
        cg.add_module(path, tree)
    return cg
