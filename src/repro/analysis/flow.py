"""Flow-sensitive abstract interpretation over the project call graph.

This is pkvlint v2's engine.  PR 4's checker walked one function at a
time and tracked only the lexical ``with`` nesting; PRs 5–8 spread the
runtime's invariants across helper chains (``_local_insert`` →
``_rotate_local`` → ``_enqueue_flush``), which a per-function walker
cannot see.  This module interprets every function body with an
abstract state and a table of callee *summaries*, so effects propagate
through calls:

* **R001 (interprocedural)** — a blocking ``Comm`` call reached through
  *any* resolved helper chain while a registered lock is held is
  flagged, with the full call path in the finding.
* **R002 (crash-ordering reachability)** — a rename must still see an
  earlier fsync (helper fsyncs now count), and in persistence modules
  (``nvm``/``sstable``/``checkpoint``) a file opened for writing must
  reach an fsync / ``write_ordered`` on every path to exit; a write
  that escapes a call-graph root non-durable is flagged.
* **R004 (interprocedural)** — calling a helper that acquires a
  lower-level registered lock while holding a higher one is a lock
  order violation even when the two ``with`` blocks live in different
  functions.
* **R007 (wall-clock taint)** — values produced by ``time.time`` /
  ``monotonic`` (directly or through a helper's return) must never
  flow into simtime-governed scheduling (``clock.advance*``,
  ``comm.send_at``, worker ``schedule``): the virtual timeline is
  deterministic only while every timestamp on it is virtual.

The abstract state is a small lattice: ``unsynced`` (may-analysis,
union at joins), ``tainted`` (per-variable taint origins, union), and
``reachable``.  Summaries (:class:`Summary`) are computed by a
monotone fixpoint over the call graph — each field only ever grows, so
iteration terminates — then a second pass re-interprets each function
and emits findings.  With ``interprocedural=False`` the same
interpreter runs with no call resolution and only the PR-4 rules,
which is exactly the old lexical behaviour (kept for the regression
fixtures and ``papyruskv lint --lexical``).

Nested ``def``/``lambda`` bodies get a fresh scope with no held locks:
a deferred job does *not* run under the ``with`` block that created it
(the compaction workers run jobs on whichever thread schedules them).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo, module_name_for
from repro.analysis.findings import Finding
from repro.analysis.lock_order import LOCK_ATTRS, level_of_attr

__all__ = [
    "COMM_BLOCKING_CALLS", "Summary", "compute_summaries",
    "check_module", "called_qualnames",
]

#: Comm methods that block or synchronize (R001 targets)
COMM_BLOCKING_CALLS = frozenset({
    "send", "send_at", "recv", "sendrecv", "fanout", "barrier",
    "bcast", "gather", "allgather", "scatter", "alltoall", "allreduce",
    "reduce",
})

#: attribute chains whose call produces a wall-clock value (R007 sources)
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.monotonic", "time.perf_counter", "time.time_ns",
    "time.monotonic_ns", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "monotonic", "perf_counter",
})

#: call names that make pending writes durable (R002 sinks)
_DURABLE_CALLS = ("write_ordered",)

#: module-name fragments whose files are held to the persistence rules
_PERSISTENCE_FRAGMENTS = ("nvm", "sstable", "checkpoint")

_LOCK_ATTR_SET = frozenset(LOCK_ATTRS)


def _attr_chain(node: ast.AST) -> str:
    """Dotted-name text of a Name/Attribute chain (best effort)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _call_name(call: ast.Call) -> str:
    """The called attribute or function name (last path component)."""
    fn = call.func
    if isinstance(fn, ast.Attribute):
        return fn.attr
    if isinstance(fn, ast.Name):
        return fn.id
    return ""


def _with_lock_attrs(node: ast.With) -> List[Tuple[str, int]]:
    """Registered lock attributes acquired by a ``with`` statement."""
    out: List[Tuple[str, int]] = []
    for item in node.items:
        expr = item.context_expr
        # unwrap `with self._lock:` and `with lock.acquire_ctx():` alike
        target = expr.func if isinstance(expr, ast.Call) else expr
        if isinstance(target, ast.Attribute) and target.attr in _LOCK_ATTR_SET:
            out.append((target.attr, expr.lineno))
    return out


def _open_write_mode(call: ast.Call) -> Optional[str]:
    """The write mode of a literal ``open(...)`` call, if any."""
    if not (isinstance(call.func, ast.Name) and call.func.id == "open"):
        return None
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return None  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        m = mode.value
        if any(c in m for c in "wax+"):
            return m
    return None


def _is_persistence_module(module: str) -> bool:
    return any(frag in module for frag in _PERSISTENCE_FRAGMENTS)


# ------------------------------------------------------------- summaries
@dataclass
class Summary:
    """The interprocedurally relevant effects of one function.

    Witness chains are tuples of hop strings (callee qualnames, ending
    at a concrete site) describing the path *below* this function; a
    caller prefixes this function's qualname when it propagates or
    reports them.  Every field only grows across fixpoint iterations.
    """

    qualname: str
    #: witness chain to a blocking comm call reachable from the body
    comm_path: Optional[Tuple[str, ...]] = None
    #: registered lock attr -> witness chain to its acquisition
    acquires: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: the body may perform an fsync / ordered durable commit
    fsyncs: bool = False
    #: some path exits with a persistent write not yet made durable
    writes_unsynced: bool = False
    write_chain: Tuple[str, ...] = ()
    #: some return value derives from a wall-clock source
    returns_wallclock: bool = False


# --------------------------------------------------------- abstract state
@dataclass
class _State:
    reachable: bool = True
    unsynced: bool = False
    unsynced_chain: Tuple[str, ...] = ()
    unsynced_line: int = 0
    #: tainted local name -> origin chain of the wall-clock value
    tainted: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def copy(self) -> "_State":
        return replace(self, tainted=dict(self.tainted))


def _join(a: _State, b: _State) -> _State:
    if not a.reachable:
        return b.copy()
    if not b.reachable:
        return a.copy()
    out = a.copy()
    if b.unsynced and not out.unsynced:
        out.unsynced = True
        out.unsynced_chain = b.unsynced_chain
        out.unsynced_line = b.unsynced_line
    for name, origin in b.tainted.items():
        out.tainted.setdefault(name, origin)
    return out


#: taint origin type: None = clean, tuple = origin chain
_Taint = Optional[Tuple[str, ...]]


class _Interp:
    """One pass of the abstract interpreter over one function body.

    ``findings is None`` → *collect* mode: build a :class:`Summary`
    against the current (possibly still-growing) summary table.
    ``findings`` a list → *emit* mode: report violations against the
    fixpoint summaries.  ``graph is None`` disables call resolution and
    all v2-only rules (the PR-4 lexical behaviour).
    """

    def __init__(self, info: FunctionInfo, graph: Optional[CallGraph],
                 summaries: Dict[str, Summary],
                 findings: Optional[List[Finding]],
                 func_name: Optional[str] = None) -> None:
        self.info = info
        self.graph = graph
        self.summaries = summaries
        self.findings = findings
        self.func = func_name or (
            f"{info.cls}.{info.name}" if info.cls else info.name
        )
        self.path = info.path
        self.persistence = _is_persistence_module(info.module)
        #: stack of (lock attr, level, with-lineno) currently held
        self.held: List[Tuple[str, Optional[int], int]] = []
        self.fsync_lines: List[int] = []
        self.out = Summary(qualname=info.qualname)
        self.exit_states: List[_State] = []

    # ------------------------------------------------------------ driving
    def run(self) -> Summary:
        node = self.info.node
        body = node.body if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) else []
        st = self.exec_block(body, _State())
        if st.reachable:
            self.exit_states.append(st)
        for ex in self.exit_states:
            if ex.unsynced and not self.out.writes_unsynced:
                self.out.writes_unsynced = True
                self.out.write_chain = ex.unsynced_chain
        return self.out

    def exit_write_state(self) -> Optional[_State]:
        """The first exit state carrying a non-durable write, if any."""
        for ex in self.exit_states:
            if ex.unsynced:
                return ex
        return None

    # --------------------------------------------------------- statements
    def exec_block(self, stmts: Sequence[ast.stmt], st: _State) -> _State:
        for stmt in stmts:
            st = self.exec_stmt(stmt, st)
        return st

    def exec_stmt(self, stmt: ast.stmt, st: _State) -> _State:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._nested_def(stmt)
            return st
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                t = self.eval(stmt.value, st)
                if t is not None:
                    self.out.returns_wallclock = True
            if st.reachable:
                self.exit_states.append(st.copy())
            st = st.copy()
            st.reachable = False
            return st
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, st)
            st = st.copy()
            st.reachable = False
            return st
        if isinstance(stmt, ast.Assign):
            t = self.eval(stmt.value, st)
            for target in stmt.targets:
                self._taint_target(target, t, st)
            return st
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                t = self.eval(stmt.value, st)
                self._taint_target(stmt.target, t, st)
            return st
        if isinstance(stmt, ast.AugAssign):
            t = self.eval(stmt.value, st)
            if t is None and isinstance(stmt.target, ast.Name):
                t = st.tainted.get(stmt.target.id)
            self._taint_target(stmt.target, t, st)
            return st
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, st)
            return st
        if isinstance(stmt, ast.If):
            self.eval(stmt.test, st)
            a = self.exec_block(stmt.body, st.copy())
            b = self.exec_block(stmt.orelse, st.copy())
            return _join(a, b)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            if isinstance(stmt, ast.While):
                self.eval(stmt.test, st)
            else:
                t = self.eval(stmt.iter, st)
                self._taint_target(stmt.target, t, st)
            # two unrollings so taint assigned in iteration N reaches a
            # sink in iteration N+1; joined with the zero-trip state
            s = st.copy()
            for _ in range(2):
                s = _join(st, self.exec_block(stmt.body, s.copy()))
            return self.exec_block(stmt.orelse, s)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_with(stmt, st)
        if isinstance(stmt, ast.Try):
            body_out = self.exec_block(stmt.body, st.copy())
            # a handler can be entered from any point in the body
            merged = _join(st, body_out)
            outs = [self.exec_block(stmt.orelse, body_out)]
            for h in stmt.handlers:
                outs.append(self.exec_block(h.body, merged.copy()))
            res = outs[0]
            for o in outs[1:]:
                res = _join(res, o)
            return self.exec_block(stmt.finalbody, res)
        if isinstance(stmt, ast.Assert):
            self.eval(stmt.test, st)
            return st
        if isinstance(stmt, ast.Delete):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    st.tainted.pop(tgt.id, None)
            return st
        # Pass/Break/Continue/Import/Global/Nonlocal and anything newer:
        # evaluate any expression children for their call effects
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.eval(child, st)
        return st

    def _exec_with(self, stmt: ast.stmt, st: _State) -> _State:
        assert isinstance(stmt, (ast.With, ast.AsyncWith))
        acquired = _with_lock_attrs(stmt)  # type: ignore[arg-type]
        for item in stmt.items:
            t = self.eval(item.context_expr, st)
            if item.optional_vars is not None:
                self._taint_target(item.optional_vars, t, st)
        for attr, lineno in acquired:
            level = level_of_attr(attr)
            if self.findings is not None:
                for held_attr, held_level, held_line in self.held:
                    if (level is not None and held_level is not None
                            and level < held_level):
                        self.findings.append(Finding(
                            tool="pkvlint",
                            rule="R004",
                            message=(
                                f"lock `{attr}` (level {level}) acquired "
                                f"inside `{held_attr}` (level {held_level})"
                                " — violates the canonical lock order"
                            ),
                            path=self.path, line=lineno, function=self.func,
                            details=(
                                f"`{held_attr}` taken at line {held_line}",
                            ),
                        ))
            self.out.acquires.setdefault(
                attr, (f"with `{attr}` at {self.path}:{lineno}",)
            )
            self.held.append((attr, level, lineno))
        st = self.exec_block(stmt.body, st)
        for _ in acquired:
            self.held.pop()
        return st

    def _nested_def(self, node: ast.AST) -> None:
        """A nested def: fresh scope, own findings, no summary effects."""
        if self.findings is None:
            return  # deferred bodies never contribute to the enclosing
            # summary: they do not run as part of this function's call
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        sub_info = FunctionInfo(
            qualname=f"{self.info.qualname}.{node.name}",
            path=self.path, module=self.info.module, name=node.name,
            cls=self.info.cls, node=node, lineno=node.lineno,
            param_classes=_param_classes(node),
        )
        sub = _Interp(sub_info, self.graph, self.summaries, self.findings,
                      func_name=f"{self.func}.{node.name}")
        sub.run()

    def _taint_target(self, target: ast.expr, t: _Taint,
                      st: _State) -> None:
        if isinstance(target, ast.Name):
            if t is not None:
                st.tainted[target.id] = t
            else:
                st.tainted.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                self._taint_target(el, t, st)
        elif isinstance(target, ast.Starred):
            self._taint_target(target.value, t, st)

    # -------------------------------------------------------- expressions
    def eval(self, expr: ast.expr, st: _State) -> _Taint:
        """Process an expression's calls; return its taint origin."""
        if isinstance(expr, ast.Name):
            return st.tainted.get(expr.id)
        if isinstance(expr, ast.Constant):
            return None
        if isinstance(expr, ast.Call):
            return self._do_call(expr, st)
        if isinstance(expr, ast.Lambda):
            if self.findings is not None:
                sub_info = FunctionInfo(
                    qualname=f"{self.info.qualname}.<lambda>",
                    path=self.path, module=self.info.module,
                    name="<lambda>", cls=self.info.cls,
                    node=ast.FunctionDef(
                        name="<lambda>", args=expr.args,
                        body=[ast.Expr(value=expr.body)],
                        decorator_list=[], lineno=expr.lineno,
                    ),
                    lineno=expr.lineno, param_classes={},
                )
                sub = _Interp(sub_info, self.graph, self.summaries,
                              self.findings,
                              func_name=f"{self.func}.<lambda>")
                sub.exec_block(sub_info.node.body, _State())
            return None
        if isinstance(expr, ast.NamedExpr):
            t = self.eval(expr.value, st)
            self._taint_target(expr.target, t, st)
            return t
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test, st)
            a = self.eval(expr.body, st)
            b = self.eval(expr.orelse, st)
            return a or b
        if isinstance(expr, ast.Attribute):
            return self.eval(expr.value, st)
        # generic: fold taint over expression children
        t: _Taint = None
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                ct = self.eval(child, st)
                t = t or ct
            elif isinstance(child, ast.comprehension):
                it = self.eval(child.iter, st)
                self._taint_target(child.target, it, st)
                for cond in child.ifs:
                    self.eval(cond, st)
        return t

    def _do_call(self, call: ast.Call, st: _State) -> _Taint:
        name = _call_name(call)
        chain = _attr_chain(call.func)
        if not isinstance(call.func, (ast.Name, ast.Attribute)):
            self.eval(call.func, st)
        recv_taint: _Taint = None
        if isinstance(call.func, ast.Attribute):
            recv_taint = self.eval(call.func.value, st)
        arg_taint: _Taint = None
        for a in call.args:
            t = self.eval(a, st)
            arg_taint = arg_taint or t
        for kw in call.keywords:
            t = self.eval(kw.value, st)
            arg_taint = arg_taint or t

        # fsync-ish calls make pending writes durable
        if "fsync" in name or name in _DURABLE_CALLS:
            self.fsync_lines.append(call.lineno)
            self.out.fsyncs = True
            if st.unsynced:
                st.unsynced = False
                st.unsynced_chain = ()
                st.unsynced_line = 0

        # blocking comm leaf (R001 direct)
        if name in COMM_BLOCKING_CALLS and "comm" in chain.lower():
            site = f"{chain}() at {self.path}:{call.lineno}"
            if self.out.comm_path is None:
                self.out.comm_path = (site,)
            if self.findings is not None and self.held:
                held_attr, _lvl, held_line = self.held[-1]
                self.findings.append(Finding(
                    tool="pkvlint",
                    rule="R001",
                    message=(
                        f"blocking comm call `{name}` while holding "
                        f"lock `{held_attr}` — a blocked peer deadlocks"
                        " this rank"
                    ),
                    path=self.path, line=call.lineno, function=self.func,
                    details=(f"`{held_attr}` taken at line {held_line}",),
                ))

        # rename-without-fsync (R002, lexical shape with helper fsyncs)
        if self.findings is not None and name in ("rename", "replace",
                                                  "move"):
            root = chain.split(".", 1)[0].lower()
            is_fs = chain in ("os.rename", "os.replace", "shutil.move") or (
                name == "rename" and "path" in root)
            if is_fs and not any(fl < call.lineno for fl in self.fsync_lines):
                self.findings.append(Finding(
                    tool="pkvlint",
                    rule="R002",
                    message=(
                        f"`{chain or name}` publishes a file with no"
                        " earlier fsync in this function — rename"
                        " of non-durable bytes breaks crash"
                        " consistency"
                    ),
                    path=self.path, line=call.lineno, function=self.func,
                ))

        # persistent write sources (R002 reachability, v2 only)
        if self.graph is not None and self.persistence:
            mode = _open_write_mode(call)
            if mode is not None or chain == "os.write":
                site = (f"open(mode={mode!r})" if mode is not None
                        else "os.write()")
                st.unsynced = True
                st.unsynced_chain = (
                    f"{site} at {self.path}:{call.lineno}",
                )
                st.unsynced_line = call.lineno

        taint: _Taint = None
        # wall-clock sources (R007)
        if chain in WALLCLOCK_CALLS:
            taint = (f"{chain}() at {self.path}:{call.lineno}",)
        if recv_taint is not None:
            taint = taint or recv_taint

        # simtime sinks (R007, v2 only)
        if (self.graph is not None and self.findings is not None
                and arg_taint is not None):
            low = chain.lower()
            is_sink = (
                (name in ("advance", "advance_to") and "clock" in low)
                or (name == "send_at" and "comm" in low)
                or (name in ("schedule", "idle_until") and "worker" in low)
                or name == "VirtualClock"
            )
            if is_sink:
                self.findings.append(Finding(
                    tool="pkvlint",
                    rule="R007",
                    message=(
                        f"wall-clock value flows into simtime-governed"
                        f" `{chain or name}` — virtual timelines must"
                        " only ever see virtual timestamps"
                    ),
                    path=self.path, line=call.lineno, function=self.func,
                    call_path=arg_taint,
                ))

        # interprocedural effects from resolved callees
        if self.graph is not None:
            for callee in self.graph.resolve_call(self.info, call):
                s = self.summaries.get(callee.qualname)
                if s is None:
                    continue
                if s.fsyncs:
                    self.fsync_lines.append(call.lineno)
                    self.out.fsyncs = True
                    if st.unsynced:
                        st.unsynced = False
                        st.unsynced_chain = ()
                        st.unsynced_line = 0
                if s.comm_path is not None:
                    if self.out.comm_path is None:
                        self.out.comm_path = (
                            (callee.qualname,) + s.comm_path
                        )
                    if self.findings is not None and self.held:
                        held_attr, _lvl, held_line = self.held[-1]
                        self.findings.append(Finding(
                            tool="pkvlint",
                            rule="R001",
                            message=(
                                f"call to `{name}` reaches a blocking"
                                f" comm call while holding lock"
                                f" `{held_attr}` — a blocked peer"
                                " deadlocks this rank"
                            ),
                            path=self.path, line=call.lineno,
                            function=self.func,
                            details=(
                                f"`{held_attr}` taken at line {held_line}",
                            ),
                            call_path=(callee.qualname,) + s.comm_path,
                        ))
                for attr, why in s.acquires.items():
                    self.out.acquires.setdefault(
                        attr, (callee.qualname,) + why
                    )
                    if self.findings is not None:
                        lvl = level_of_attr(attr)
                        for held_attr, held_level, held_line in self.held:
                            if (lvl is not None and held_level is not None
                                    and lvl < held_level
                                    # an RLock re-entered through a helper
                                    # is not an inversion
                                    and attr != held_attr):
                                self.findings.append(Finding(
                                    tool="pkvlint",
                                    rule="R004",
                                    message=(
                                        f"call to `{name}` acquires lock"
                                        f" `{attr}` (level {lvl}) while"
                                        f" holding `{held_attr}` (level"
                                        f" {held_level}) — violates the"
                                        " canonical lock order"
                                    ),
                                    path=self.path, line=call.lineno,
                                    function=self.func,
                                    details=(
                                        f"`{held_attr}` taken at line"
                                        f" {held_line}",
                                    ),
                                    call_path=(callee.qualname,) + why,
                                ))
                if s.writes_unsynced:
                    st.unsynced = True
                    st.unsynced_chain = (
                        (callee.qualname,) + s.write_chain
                    )
                    st.unsynced_line = call.lineno
                if s.returns_wallclock:
                    taint = taint or (callee.qualname,)
        return taint


def _param_classes(node: ast.AST) -> Dict[str, str]:
    """Annotated-parameter class map for an ad-hoc function node."""
    from repro.analysis.callgraph import _annotation_class

    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    params: Dict[str, str] = {}
    for arg in (list(node.args.posonlyargs) + list(node.args.args)
                + list(node.args.kwonlyargs)):
        klass = _annotation_class(arg.annotation)
        if klass:
            params[arg.arg] = klass
    return params


# ------------------------------------------------------------ driver API
def compute_summaries(graph: CallGraph) -> Dict[str, Summary]:
    """Fixpoint over every indexed function's summary.

    Each pass re-interprets every body against the current table; the
    summary lattice only grows, so iteration terminates (in practice in
    2–3 rounds: the helper chains are shallow).
    """
    summaries: Dict[str, Summary] = {
        q: Summary(qualname=q) for q in graph.functions
    }
    for _round in range(len(graph.functions) + 2):
        changed = False
        for qual, info in graph.functions.items():
            s = _Interp(info, graph, summaries, findings=None).run()
            if s != summaries[qual]:
                summaries[qual] = s
                changed = True
        if not changed:
            break
    return summaries


def called_qualnames(graph: CallGraph) -> Set[str]:
    """Qualnames reached by at least one resolved project call site."""
    called: Set[str] = set()
    for info in graph.functions.values():
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                for callee in graph.resolve_call(info, node):
                    called.add(callee.qualname)
    return called


class _EmitWalker(ast.NodeVisitor):
    """Find every function in a module and run the emit pass on it.

    Functions indexed by the call graph reuse their :class:`FunctionInfo`
    (annotation-based resolution included); conditionally defined ones
    get an ad-hoc info so they are still checked lexically.
    """

    def __init__(self, path: str, tree: ast.Module,
                 graph: Optional[CallGraph],
                 summaries: Dict[str, Summary],
                 called: Set[str],
                 findings: List[Finding]) -> None:
        self.path = path
        self.module = module_name_for(path)
        self.graph = graph
        self.summaries = summaries
        self.called = called
        self.findings = findings
        self._scope: List[str] = []
        self.visit(tree)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        cls = self._scope[-1] if self._scope else None
        qual = (f"{self.module}:{cls}.{node.name}" if cls
                else f"{self.module}:{node.name}")
        info = None
        if self.graph is not None:
            info = self.graph.functions.get(qual)
        if info is None or info.node is not node:
            info = FunctionInfo(
                qualname=qual, path=self.path, module=self.module,
                name=node.name, cls=cls, node=node, lineno=node.lineno,
                param_classes=_param_classes(node),
            )
        func_name = f"{cls}.{node.name}" if cls else node.name
        interp = _Interp(info, self.graph, self.summaries, self.findings,
                         func_name=func_name)
        interp.run()
        # R002 reachability: a persistence-module function whose writes
        # can escape non-durable is reported at the call-graph roots —
        # helpers whose callers fsync for them stay clean
        if (self.graph is not None and interp.persistence
                and qual not in self.called):
            ex = interp.exit_write_state()
            if ex is not None:
                self.findings.append(Finding(
                    tool="pkvlint",
                    rule="R002",
                    message=(
                        "persistent write can reach function exit with"
                        " no fsync/write_ordered on the path — a crash"
                        " here leaves non-durable bytes published"
                    ),
                    path=self.path,
                    line=ex.unsynced_line or node.lineno,
                    function=func_name,
                    call_path=(ex.unsynced_chain
                               if len(ex.unsynced_chain) > 1 else ()),
                    details=(ex.unsynced_chain[:1] or ("write site",)),
                ))
        # do NOT generic_visit: the interpreter handled nested defs

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]


def check_module(path: str, tree: ast.Module,
                 graph: Optional[CallGraph],
                 summaries: Dict[str, Summary],
                 called: Set[str]) -> List[Finding]:
    """Run the emit pass over one module; returns its flow findings."""
    findings: List[Finding] = []
    _EmitWalker(path, tree, graph, summaries, called, findings)
    return findings
