"""Lock-order graph and potential-deadlock (cycle) detection.

Every tracked-lock acquisition made while holding another tracked lock
adds a directed edge *held → acquired* with the acquisition stacks of
both ends.  A cycle in that graph is a potential deadlock: two threads
can interleave the recorded acquisitions so each waits on the other.
Edges are recorded per lock *instance*, so an ABBA pattern across two
``db.state`` locks (two open databases) is caught even though both
belong to one canonical level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import Finding


@dataclass
class LockGraph:
    """Directed acquisition graph over lock-instance labels."""

    #: (held label, acquired label) -> (held stack, acquired stack)
    edges: Dict[Tuple[str, str], Tuple[str, str]] = field(
        default_factory=dict
    )

    def add_edge(self, held: str, acquired: str,
                 held_site: str, acquired_site: str) -> None:
        """Record one held→acquired observation (first stacks win)."""
        key = (held, acquired)
        if key not in self.edges:
            self.edges[key] = (held_site, acquired_site)

    def successors(self, node: str) -> List[str]:
        """Labels acquired at least once while ``node`` was held."""
        return [b for (a, b) in self.edges if a == node]

    def find_cycles(self) -> List[List[str]]:
        """Every elementary cycle, canonicalized and deduplicated."""
        adj: Dict[str, List[str]] = {}
        for a, b in self.edges:
            adj.setdefault(a, []).append(b)
            adj.setdefault(b, [])
        cycles: List[List[str]] = []
        seen: Set[Tuple[str, ...]] = set()

        def dfs(start: str, node: str, path: List[str],
                on_path: Set[str]) -> None:
            for nxt in adj.get(node, ()):
                if nxt == start:
                    cyc = _canonical(path)
                    key = tuple(cyc)
                    if key not in seen:
                        seen.add(key)
                        cycles.append(cyc)
                elif nxt not in on_path and nxt > start:
                    # only explore nodes ordered after the start node:
                    # every cycle is found exactly once, rooted at its
                    # smallest label
                    path.append(nxt)
                    on_path.add(nxt)
                    dfs(start, nxt, path, on_path)
                    on_path.discard(nxt)
                    path.pop()

        for node in sorted(adj):
            dfs(node, node, [node], {node})
        return cycles

    def deadlock_findings(self) -> List[Finding]:
        """One finding per cycle, carrying the acquisition stacks."""
        out: List[Finding] = []
        for cycle in self.find_cycles():
            ring = cycle + [cycle[0]]
            details: List[str] = []
            for a, b in zip(ring, ring[1:]):
                held_site, acq_site = self.edges.get(
                    (a, b), ("<unknown>", "<unknown>")
                )
                details.append(
                    f"{a} held at {held_site}; then {b} acquired at "
                    f"{acq_site}"
                )
            out.append(Finding(
                tool="deadlock",
                rule="DEADLOCK",
                message=(
                    "potential deadlock: cyclic lock acquisition "
                    + " -> ".join(ring)
                ),
                details=tuple(details),
            ))
        return out


def _canonical(path: List[str]) -> List[str]:
    """Rotate a cycle so its smallest label comes first."""
    i = path.index(min(path))
    return path[i:] + path[:i]
