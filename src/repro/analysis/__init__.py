"""Concurrency-correctness plane for the PapyrusKV reproduction.

Three cooperating layers (see ``docs/analysis.md``):

* :mod:`repro.analysis.pkvlint` — an AST-based static analyzer with
  project-specific rules R001–R005 (no blocking ``Comm`` calls under a
  lock, fsync-before-rename durability, message/handler/wire-tag
  completeness, canonical lock order, no swallowed corruption errors);
* :mod:`repro.analysis.runtime` — an opt-in vector-clock happens-before
  race detector plus a lock-order/deadlock checker, driven by
  instrumented locks and read/write annotations on the shared hot
  structures (MemTables, LRU caches, SSTable-reader caches);
* the ``lint`` and ``race-report`` subcommands of
  :mod:`repro.tools.cli`, which surface both as JSON findings.

Everything is stdlib-only and costs one ``None`` check per hook when
the detector is disabled (the default).
"""

from __future__ import annotations

from repro.analysis.findings import (
    Finding,
    findings_to_json,
    is_allowed,
    load_allowlist,
)
from repro.analysis.lock_order import (
    LOCK_ORDER,
    LockClass,
    level_of,
    level_of_attr,
    render_lock_table,
    render_threads_map,
)
from repro.analysis.pkvlint import lint_file, lint_paths
from repro.analysis.runtime import (
    RaceDetector,
    annotate_read,
    annotate_write,
    disable,
    enable,
    get_detector,
    make_lock,
    make_rlock,
    maybe_enable_from_env,
)

__all__ = [
    "Finding",
    "findings_to_json",
    "load_allowlist",
    "is_allowed",
    "LOCK_ORDER",
    "LockClass",
    "level_of",
    "level_of_attr",
    "render_lock_table",
    "render_threads_map",
    "lint_file",
    "lint_paths",
    "RaceDetector",
    "get_detector",
    "enable",
    "disable",
    "maybe_enable_from_env",
    "make_lock",
    "make_rlock",
    "annotate_read",
    "annotate_write",
]
