"""Concurrency-correctness plane for the PapyrusKV reproduction.

Three cooperating layers (see ``docs/analysis.md``):

* :mod:`repro.analysis.pkvlint` — an AST-based static analyzer with
  project-specific rules R001–R007 (no blocking ``Comm`` calls under a
  lock, crash-ordering durability, message/handler/wire-tag
  completeness, canonical lock order, no swallowed corruption errors,
  wire-protocol spec conformance, wall-clock taint) — since v2 run
  *whole-program* over a call graph (:mod:`repro.analysis.callgraph`)
  with a flow-sensitive interpreter (:mod:`repro.analysis.flow`);
* :mod:`repro.analysis.runtime` — an opt-in vector-clock happens-before
  race detector plus a lock-order/deadlock checker, driven by
  instrumented locks and read/write annotations on the shared hot
  structures (MemTables, LRU caches, SSTable-reader caches);
* the ``lint`` and ``race-report`` subcommands of
  :mod:`repro.tools.cli`, which surface both as JSON findings.

Everything is stdlib-only and costs one ``None`` check per hook when
the detector is disabled (the default).
"""

from __future__ import annotations

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.findings import (
    SCHEMA_VERSION,
    Finding,
    findings_to_json,
    is_allowed,
    load_allowlist,
    load_doc,
    migrate_doc,
)
from repro.analysis.flow import Summary, compute_summaries
from repro.analysis.lock_order import (
    LOCK_ORDER,
    LockClass,
    level_of,
    level_of_attr,
    render_lock_table,
    render_threads_map,
)
from repro.analysis.pkvlint import lint_file, lint_paths
from repro.analysis.sarif import findings_to_sarif
from repro.analysis.runtime import (
    RaceDetector,
    annotate_read,
    annotate_write,
    disable,
    enable,
    get_detector,
    make_lock,
    make_rlock,
    maybe_enable_from_env,
)

__all__ = [
    "Finding",
    "SCHEMA_VERSION",
    "findings_to_json",
    "findings_to_sarif",
    "load_doc",
    "migrate_doc",
    "load_allowlist",
    "is_allowed",
    "CallGraph",
    "build_call_graph",
    "Summary",
    "compute_summaries",
    "LOCK_ORDER",
    "LockClass",
    "level_of",
    "level_of_attr",
    "render_lock_table",
    "render_threads_map",
    "lint_file",
    "lint_paths",
    "RaceDetector",
    "get_detector",
    "enable",
    "disable",
    "maybe_enable_from_env",
    "make_lock",
    "make_rlock",
    "annotate_read",
    "annotate_write",
]
