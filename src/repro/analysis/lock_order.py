"""The canonical lock-acquisition order of the whole runtime.

This registry is the single source of truth consumed by three clients:

* pkvlint rule **R004** checks lexically nested ``with`` blocks against
  it (a lock may only be acquired while holding locks of *lower*
  level);
* the dynamic lock-order checker (:mod:`repro.analysis.runtime`)
  enforces the same rule on real acquisitions and builds the deadlock
  graph from the levels declared here;
* ``docs/architecture.md`` embeds :func:`render_lock_table` /
  :func:`render_threads_map` between ``lock-order`` markers, and
  ``tests/analysis/test_docs_sync.py`` regenerates the section and
  fails on drift — the docs cannot diverge from the registry.

Levels increase in acquisition order: while holding a lock at level
``L`` a thread may only acquire locks with level strictly greater than
``L``.  Locks that are never nested still get distinct levels so an
accidental nesting is caught the first time it happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class LockClass:
    """One named lock class in the canonical order."""

    name: str
    level: int
    #: attribute names this lock appears under in source (for pkvlint)
    attrs: Tuple[str, ...]
    #: who holds an instance of it
    holder: str
    #: what it guards
    guards: str


#: The canonical order, lowest level acquired first.
LOCK_ORDER: Tuple[LockClass, ...] = (
    LockClass(
        name="db.state",
        level=10,
        attrs=("_lock",),
        holder="core.db.Database (RLock)",
        guards="MemTables, caches, ssids, inflight, quarantine list",
    ),
    LockClass(
        name="db.scan_pins",
        level=12,
        attrs=("_scan_lock",),
        holder="core.db.Database",
        guards="scan snapshot pins (ssid -> open-iterator count) and the "
               "deferred-unlink map compaction parks pinned tables in",
    ),
    LockClass(
        name="db.membership",
        level=15,
        attrs=("_mv_lock",),
        holder="core.membership.MembershipView",
        guards="replica-group membership: epoch, dead set, last-heard "
               "times, suspicion, pending re-replication work",
    ),
    LockClass(
        name="db.readers",
        level=20,
        attrs=("_readers_lock",),
        holder="core.db.Database",
        guards="the per-SSID SSTableReader cache (main + handler threads)",
    ),
    LockClass(
        name="db.index_cache",
        level=25,
        attrs=("_index_lock",),
        holder="core.db.Database",
        guards="replicated peer index views and the metadata-bundle LRU "
               "(one-sided cross-group reads; main + handler threads)",
    ),
    LockClass(
        name="world.comm",
        level=30,
        attrs=("_comm_lock",),
        holder="mpi.comm.World",
        guards="communicator-id allocation, collective-state registry",
    ),
    LockClass(
        name="world.mailboxes",
        level=40,
        attrs=("_mbx_lock",),
        holder="mpi.comm.World",
        guards="the (comm, rank) -> mailbox map",
    ),
    LockClass(
        name="comm.collective",
        level=50,
        attrs=("lock",),
        holder="mpi.comm._CollectiveState",
        guards="collective slots/scratch around the rendezvous barrier",
    ),
    LockClass(
        name="queue.fifo",
        level=60,
        attrs=("_not_full", "_not_empty"),
        holder="util.queues.BoundedFIFO",
        guards="the bounded FIFO's item list and conditions",
    ),
    LockClass(
        name="sstable.block_cache",
        level=70,
        attrs=("_blocks_lock",),
        holder="sstable.block_cache.BlockCache",
        guards="the shared SSData block cache: LRU order, byte budget, "
               "per-table index, counters (leaf lock, never nested under)",
    ),
)

_BY_NAME: Dict[str, LockClass] = {lc.name: lc for lc in LOCK_ORDER}

_BY_ATTR: Dict[str, LockClass] = {}
for _lc in LOCK_ORDER:
    for _attr in _lc.attrs:
        _BY_ATTR.setdefault(_attr, _lc)

#: every attribute name that denotes a registered lock (pkvlint R001/R004)
LOCK_ATTRS: Tuple[str, ...] = tuple(sorted(_BY_ATTR))


def level_of(name: str) -> Optional[int]:
    """Level of a lock class by canonical name; None if unregistered."""
    lc = _BY_NAME.get(name)
    return None if lc is None else lc.level


def level_of_attr(attr: str) -> Optional[int]:
    """Level of a lock by source attribute name; None if unregistered."""
    lc = _BY_ATTR.get(attr)
    return None if lc is None else lc.level


def class_of_attr(attr: str) -> Optional[LockClass]:
    """The registered lock class for a source attribute name."""
    return _BY_ATTR.get(attr)


def render_lock_table() -> str:
    """The canonical order as a markdown table (embedded in docs)."""
    lines = [
        "| order | lock | held by | guards |",
        "|---|---|---|---|",
    ]
    for lc in LOCK_ORDER:
        attrs = ", ".join(f"`{a}`" for a in lc.attrs)
        lines.append(
            f"| {lc.level} | **{lc.name}** ({attrs}) | {lc.holder} "
            f"| {lc.guards} |"
        )
    return "\n".join(lines)


def render_threads_map() -> str:
    """The threads-and-locks map as markdown (embedded in docs)."""
    return "\n".join([
        "Threads and the locks they take, in acquisition order:",
        "",
        "* **rank main** — `db.state` (every put/get/scan/fence), "
        "`db.scan_pins` (pinning a scan's SSID horizon at open, "
        "releasing it at iterator close), "
        "`db.membership` (replica-group routing and failure "
        "declarations when `replicas > 1`), "
        "`db.readers` (SSTable lookups), `db.index_cache` (replicated "
        "peer metadata on one-sided cross-group gets), "
        "`world.comm`/`world.mailboxes` "
        "(comm management), `comm.collective` (collectives), `queue.fifo`, "
        "`sstable.block_cache` (block-cached SSData probes).",
        "* **message handler** (per rank × database) — `db.state` "
        "(serving migrations and remote gets), `db.membership` "
        "(heartbeats, piggybacked liveness, epoch checks), "
        "`db.readers` (SSTable "
        "lookups on behalf of remote ranks), `db.index_cache` "
        "(installing eagerly published index bundles), "
        "`sstable.block_cache` "
        "(those lookups' SSData probes), `world.mailboxes` (its "
        "blocking receive).",
        "* **virtual background workers** (compaction, dispatcher) are "
        "*not* real threads: their jobs run eagerly on whichever real "
        "thread schedules them and inherit that thread's held locks — "
        "which is why flush jobs must never send (`pkvlint` R001).",
        "",
        "Rule: a thread holding a lock at level *L* may only acquire "
        "locks at levels strictly greater than *L*.  `db.state` is an "
        "RLock (re-entry allowed); everything else is plain.  No lock "
        "is ever held across a blocking receive.",
    ])


def render_markdown() -> str:
    """The full generated docs section (table + threads map)."""
    return render_lock_table() + "\n\n" + render_threads_map()
