"""Race-detector stress drive: a 4-rank mixed workload under detection.

Runs puts, gets, deletes, scans, fences, SSTABLE barriers, cross-rank
get storms, a checkpoint, and a verify pass with the race detector
enabled, then returns the detector's machine-readable report.  The CI
job and the ``papyruskv race-report`` subcommand both call
:func:`run_stress`; ``tests/analysis/test_stress_race.py`` asserts the
findings list is empty.

The workload is chosen to force the historically racy interleavings:

* small MemTables so flushes and compactions happen mid-run;
* a cross-rank get storm so message handlers hit the SSTable-reader
  cache while their rank-main threads scan it;
* same-group gets so the §2.7 NOT_IN_MEMORY shortcut reads the
  quarantine list concurrently with verify;
* open scan iterators consumed with writes interleaved (and a
  collective ``scan_global`` with a limit short-circuit), so scan pins
  and compaction's deferred unlinks race against flush/retire.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.analysis import runtime as _rt

__all__ = ["run_stress"]


def _stress_main(ops_per_rank: int, seed: int):
    """Build the per-rank SPMD body (closure over workload knobs)."""

    def body(ctx: Any) -> int:
        import random

        from repro import Papyrus, SSTABLE
        from repro.config import Options

        rng = random.Random(seed * 1000 + ctx.world_rank)
        served = 0
        with Papyrus(ctx) as env:
            db = env.open("race_stress", Options(
                memtable_capacity=1 << 11,
                remote_memtable_capacity=1 << 10,
                cache_local_capacity=1 << 13,
                cache_remote_capacity=1 << 13,
                compaction_interval=3,
                # two storage groups: cross-group gets force the
                # handler's full SSTable lookup (the reader-cache
                # contention path); same-group gets keep exercising
                # the §2.7 shortcut and its quarantine snapshot
                group_size=2,
                race_detect=True,
            ))
            nranks = ctx.nranks
            for i in range(ops_per_rank):
                key = f"k{rng.randrange(ops_per_rank * nranks):05d}".encode()
                op = rng.random()
                if op < 0.5:
                    db.put(key, f"v{i}".encode() * rng.randrange(1, 8))
                elif op < 0.8:
                    if db.get_or_none(key) is not None:
                        served += 1
                elif op < 0.9:
                    db.delete(key)
                else:
                    # scan-while-writing: consume a pinned lazy iterator
                    # with puts interleaved mid-stream, so flushes and
                    # compactions retire tables under an open scan (the
                    # snapshot-pin / deferred-unlink path)
                    with db.scan() as it:
                        for j, _pair in enumerate(it):
                            served += 1
                            if j % 8 == 0:
                                db.put(
                                    f"s{ctx.world_rank}:{i}:{j}".encode(),
                                    b"x" * rng.randrange(1, 32),
                                )
                if i % 17 == 0:
                    db.fence()
                if i % 29 == 0:
                    db.barrier(SSTABLE)
            # cross-rank get storm: every rank hammers every other
            # rank's shard so handlers and mains contend on the
            # reader cache and the quarantine snapshot
            db.barrier(SSTABLE)
            for i in range(ops_per_rank):
                key = f"k{(i * 7) % (ops_per_rank * nranks):05d}".encode()
                if db.get_or_none(key) is not None:
                    served += 1
            # collective windowed scan with a limit short-circuit: the
            # chunked bcast rounds run while handlers still serve the
            # tail of the get storm's reader-cache traffic
            served += sum(1 for _ in db.scan_global(limit=25, chunk=8))
            db.checkpoint("race_stress_snap").wait(ctx.clock)
            db.verify()
            db.barrier()
        return served

    return body


def run_stress(nranks: int = 4, ops_per_rank: int = 80,
               seed: int = 7) -> Dict[str, Any]:
    """Run the stress workload under a fresh detector; return its report.

    The previously installed detector (if any) is restored afterwards,
    so callers — including tests running under ``PKV_RACE_DETECT=1`` —
    see their own detector state undisturbed.
    """
    from repro.mpi.launcher import spmd_run

    prev: Optional[_rt.RaceDetector] = _rt.get_detector()
    det = _rt.enable(reset=True)
    try:
        spmd_run(nranks, _stress_main(ops_per_rank, seed), timeout=120.0)
        return det.report()
    finally:
        _rt.restore(prev)
