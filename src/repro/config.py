"""Database options and artifact-style environment configuration.

Mirrors ``papyruskv_option_t`` plus the environment variables the
paper's artifact uses (``PAPYRUSKV_CONSISTENCY``, ``PAPYRUSKV_GROUP_SIZE``,
``PAPYRUSKV_BIN_SEARCH``, ``PAPYRUSKV_CACHE_REMOTE``,
``PAPYRUSKV_REPOSITORY``, ...).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.errors import InvalidModeError, InvalidOptionError, InvalidProtectionError
from repro.util.hashing import HashFunction

# --- consistency modes (artifact: PAPYRUSKV_CONSISTENCY=1 seq, =2 relaxed)
SEQUENTIAL = 1
RELAXED = 2

# --- protection attributes
RDWR = 0
WRONLY = 1
RDONLY = 2

# --- barrier flush levels
MEMTABLE = 0
SSTABLE = 1

# --- open flags (bitmask)
CREATE = 0x1
RDONLY_OPEN = 0x2

_CONSISTENCY_NAMES = {SEQUENTIAL: "sequential", RELAXED: "relaxed"}
_PROTECTION_NAMES = {RDWR: "rdwr", WRONLY: "wronly", RDONLY: "rdonly"}

KB = 1024
MB = 1024 * KB


def consistency_name(mode: int) -> str:
    """Human-readable name of a consistency mode constant."""
    try:
        return _CONSISTENCY_NAMES[mode]
    except KeyError:
        raise InvalidModeError(f"unknown consistency mode {mode}") from None


def protection_name(prot: int) -> str:
    """Human-readable name of a protection attribute constant."""
    try:
        return _PROTECTION_NAMES[prot]
    except KeyError:
        raise InvalidProtectionError(f"unknown protection {prot}") from None


@dataclass(frozen=True, kw_only=True)
class Options:
    """Per-database configuration (``papyruskv_option_t``).

    The paper lets programmers configure "MemTable capacity, cache
    on/off, cache capacity, memory consistency mode, protection
    attribute, and custom hash function" (§2.3).

    Fields are keyword-only and validated at construction, so a
    misconfigured database (negative MemTable size, unknown consistency
    or protection constant, fields swapped positionally) fails fast at
    the ``Options(...)`` call instead of deep in the put path.
    """

    #: MemTable capacity in bytes (paper evaluation: 1 GB; tests use small
    #: values to exercise flushing)
    memtable_capacity: int = 4 * MB
    #: remote MemTable capacity (migration batch size)
    remote_memtable_capacity: int = 1 * MB
    consistency: int = RELAXED
    protection: int = RDWR
    #: enable the local (SSTable-hit) cache
    cache_local_enabled: bool = True
    cache_local_capacity: int = 8 * MB
    #: remote cache capacity; the cache only activates under RDONLY
    cache_remote_capacity: int = 8 * MB
    #: custom hash function (None = built-in FNV-1a)
    hash_fn: Optional[HashFunction] = None
    #: storage group size; None = architecture default
    group_size: Optional[int] = None
    #: binary (True) vs sequential (False) SSTable search
    binary_search: bool = True
    #: flushing-queue capacity (immutable local MemTables in flight)
    flush_queue_capacity: int = 4
    #: migration-queue capacity (immutable remote MemTables in flight)
    migration_queue_capacity: int = 4
    #: compact whenever a new SSID is a multiple of this (0 disables)
    compaction_interval: int = 8
    #: group commit: puts within this virtual-time window of the first
    #: one share its durability charge and ack drain (0 disables)
    group_commit_interval: float = 200e-6
    #: group commit: a window also closes once it has coalesced this
    #: many payload bytes (0 disables group commit entirely)
    group_commit_bytes: int = 64 * KB
    #: pipelined flush: overlap SSTable build (CPU) and sync (device)
    #: on separate background timelines; False restores the monolithic
    #: single-worker flush+compaction path
    flush_pipeline: bool = True
    #: partitioned compaction: split each merge into this many key-range
    #: partition jobs on a dedicated worker (<=1 restores the monolithic
    #: merge-everything job on the flush worker)
    compaction_partitions: int = 4
    #: full (tombstone-dropping) merge of every table once this many
    #: minor delta compactions have accumulated (0 = never)
    compaction_major_every: int = 8
    #: compaction duty cycle in (0, 1]: after each partition job the
    #: compaction worker idles so it occupies at most this fraction of
    #: its timeline, leaving device bandwidth for foreground flushes
    compaction_rate_limit: float = 0.5
    #: bloom filter target false-positive rate
    bloom_fp_rate: float = 0.01
    #: consult bloom filters on gets (ablation knob; the files are
    #: always written so the setting can change on reopen)
    bloom_enabled: bool = True
    #: enable the shared SSData block cache (read-path layer; see
    #: :mod:`repro.sstable.block_cache`)
    block_cache_enabled: bool = True
    #: block-cache byte budget (charged bytes, not entries)
    block_cache_capacity: int = 16 * MB
    #: skip SSTables whose footer [min_key, max_key] fences exclude the
    #: key, before the bloom is even consulted (v1 tables fall back to
    #: bloom-only)
    fence_pruning: bool = True
    #: pairs per broadcast chunk in the windowed global scan merge
    #: (``db.scan_global``): the in-flight buffer is bounded by
    #: ``nranks * scan_chunk`` pairs, whatever the shard sizes
    scan_chunk: int = 1024
    #: repository selector: "nvm" or "lustre"; None inherits the
    #: environment's repository (``papyruskv_init`` argument)
    repository: Optional[str] = None
    #: wall-clock seconds to wait for a remote reply before retrying;
    #: None waits forever (the pre-fault-tolerance behavior)
    remote_timeout: Optional[float] = None
    #: how many times a timed-out remote request is retried (with
    #: exponential backoff) before raising RemoteTimeoutError
    remote_retries: int = 3
    #: verify SSTable checksums when (re)opening a database; incomplete
    #: tables are always detected regardless of this knob
    verify_on_open: bool = False
    #: number of ranks holding each key (1 = the paper's unreplicated
    #: placement: owner only).  With R > 1 every put fans out to the key's
    #: replica group — the owner plus the next R-1 live ranks on the hash
    #: ring — and rank failure no longer takes a key range offline
    replicas: int = 1
    #: how many durable copies a put waits for before returning (counts
    #: the writer's own copy when it is a group member); must satisfy
    #: ``1 <= write_quorum <= replicas``
    write_quorum: int = 1
    #: virtual seconds between heartbeat pings to live peers (failure
    #: detector; only active when ``replicas > 1``)
    heartbeat_interval: float = 500e-6
    #: virtual seconds of ping silence after which a peer is suspected
    suspect_timeout: float = 2e-3
    #: virtual seconds of ping silence after which a suspected peer is
    #: declared dead (after a final wall-clock grace wait for its pong)
    dead_timeout: float = 5e-3
    #: one-sided index replication: cache peers' SSTable metadata
    #: bundles (bloom + index + footer fences) locally and resolve
    #: cross-group remote gets with direct data reads against the
    #: owner's NVM, falling back to the handler on staleness.  Opt-in:
    #: gets bypass the owner's handler, so only enable under the relaxed
    #: consistency contract (or RDONLY) the direct path requires
    index_replication: bool = False
    #: byte budget of the replicated-metadata bundle cache (per rank)
    index_cache_capacity: int = 8 * MB
    #: owners eagerly push fresh bundles to their replica group at
    #: flush/compaction time (replicas > 1); False leaves peers to pull
    #: lazily on first miss
    index_push_eager: bool = True
    #: enable the dynamic race / lock-order / deadlock detector
    #: (:mod:`repro.analysis.runtime`); also switched on process-wide by
    #: the ``PKV_RACE_DETECT=1`` environment variable
    race_detect: bool = False

    def __post_init__(self) -> None:
        if self.memtable_capacity <= 0 or self.remote_memtable_capacity <= 0:
            raise InvalidOptionError("MemTable capacities must be positive")
        if self.consistency not in _CONSISTENCY_NAMES:
            raise InvalidModeError(f"unknown consistency {self.consistency}")
        if self.protection not in _PROTECTION_NAMES:
            raise InvalidProtectionError(f"unknown protection {self.protection}")
        if self.cache_local_capacity <= 0 or self.cache_remote_capacity <= 0:
            raise InvalidOptionError("cache capacities must be positive")
        if self.flush_queue_capacity <= 0 or self.migration_queue_capacity <= 0:
            raise InvalidOptionError("queue capacities must be positive")
        if self.compaction_interval < 0:
            raise InvalidOptionError("compaction_interval must be >= 0")
        if self.group_commit_interval < 0:
            raise InvalidOptionError("group_commit_interval must be >= 0")
        if self.group_commit_bytes < 0:
            raise InvalidOptionError("group_commit_bytes must be >= 0")
        if self.compaction_partitions < 0:
            raise InvalidOptionError("compaction_partitions must be >= 0")
        if self.compaction_major_every < 0:
            raise InvalidOptionError("compaction_major_every must be >= 0")
        if not 0.0 < self.compaction_rate_limit <= 1.0:
            raise InvalidOptionError(
                "compaction_rate_limit must be in (0, 1]"
            )
        if not 0.0 < self.bloom_fp_rate < 1.0:
            raise InvalidOptionError("bloom_fp_rate must be in (0,1)")
        if self.block_cache_capacity <= 0:
            raise InvalidOptionError("block_cache_capacity must be positive")
        if self.repository not in (None, "nvm", "lustre"):
            raise InvalidOptionError(
                f"repository must be 'nvm' or 'lustre', got {self.repository!r}"
            )
        if self.group_size is not None and self.group_size <= 0:
            raise InvalidOptionError("group_size must be positive")
        if self.remote_timeout is not None and self.remote_timeout <= 0:
            raise InvalidOptionError("remote_timeout must be positive or None")
        if self.remote_retries < 0:
            raise InvalidOptionError("remote_retries must be >= 0")
        if self.replicas < 1:
            raise InvalidOptionError("replicas must be >= 1")
        if not 1 <= self.write_quorum <= self.replicas:
            raise InvalidOptionError(
                f"write_quorum must satisfy 1 <= Q <= replicas, got "
                f"Q={self.write_quorum} R={self.replicas}"
            )
        if self.heartbeat_interval <= 0:
            raise InvalidOptionError("heartbeat_interval must be positive")
        if self.suspect_timeout <= 0 or self.dead_timeout <= 0:
            raise InvalidOptionError(
                "suspect_timeout and dead_timeout must be positive"
            )
        if self.suspect_timeout > self.dead_timeout:
            raise InvalidOptionError(
                "suspect_timeout must not exceed dead_timeout"
            )
        if self.index_cache_capacity <= 0:
            raise InvalidOptionError("index_cache_capacity must be positive")
        if self.scan_chunk <= 0:
            raise InvalidOptionError("scan_chunk must be positive")

    def with_(self, **kw) -> "Options":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)


def options_from_env(env: Optional[Mapping[str, str]] = None,
                     base: Optional[Options] = None) -> Options:
    """Build options from ``PAPYRUSKV_*`` variables, artifact-style.

    Recognized: ``PAPYRUSKV_CONSISTENCY`` (1=sequential, 2=relaxed),
    ``PAPYRUSKV_GROUP_SIZE``, ``PAPYRUSKV_BIN_SEARCH`` (1=sequential scan,
    2=binary search — the artifact's encoding), ``PAPYRUSKV_CACHE_REMOTE``
    (1 enables RDONLY remote caching by default), ``PAPYRUSKV_MEMTABLE_SIZE``
    (bytes), ``PAPYRUSKV_REPOSITORY`` (containing "lustre" selects the
    parallel file system), ``PAPYRUSKV_BLOCK_CACHE`` (0 disables the
    shared SSData block cache, any other value is its byte budget),
    ``PAPYRUSKV_FENCE_PRUNING`` (0 disables footer key-fence pruning),
    ``PAPYRUSKV_SCAN_CHUNK`` (pairs per global-scan broadcast chunk),
    ``PAPYRUSKV_GROUP_COMMIT`` (0 disables write-side group commit, any
    other value is the commit window's byte budget),
    ``PAPYRUSKV_FLUSH_PIPELINE`` (0 restores the monolithic flush),
    ``PAPYRUSKV_COMPACTION_PARTITIONS`` (1 restores monolithic
    compaction), ``PAPYRUSKV_REPLICAS`` (copies per key),
    ``PAPYRUSKV_WRITE_QUORUM`` (durable copies a put waits for),
    ``PAPYRUSKV_INDEX_REPLICATION`` (1 enables one-sided index
    replication), ``PAPYRUSKV_INDEX_CACHE`` (0 disables index
    replication, any other value is the bundle cache's byte budget),
    and ``PAPYRUSKV_INDEX_PUSH`` (0 disables the eager publish to the
    replica group).
    """
    env = os.environ if env is None else env
    opt = base or Options()
    if "PAPYRUSKV_CONSISTENCY" in env:
        opt = opt.with_(consistency=int(env["PAPYRUSKV_CONSISTENCY"]))
    if "PAPYRUSKV_GROUP_SIZE" in env:
        opt = opt.with_(group_size=int(env["PAPYRUSKV_GROUP_SIZE"]))
    if "PAPYRUSKV_BIN_SEARCH" in env:
        opt = opt.with_(binary_search=int(env["PAPYRUSKV_BIN_SEARCH"]) >= 2)
    if "PAPYRUSKV_MEMTABLE_SIZE" in env:
        opt = opt.with_(memtable_capacity=int(env["PAPYRUSKV_MEMTABLE_SIZE"]))
    if "PAPYRUSKV_REPOSITORY" in env:
        repo = env["PAPYRUSKV_REPOSITORY"]
        opt = opt.with_(
            repository="lustre" if "lustre" in repo.lower() else "nvm"
        )
    if "PAPYRUSKV_BLOCK_CACHE" in env:
        # 0 disables; any other value is the byte budget
        val = int(env["PAPYRUSKV_BLOCK_CACHE"])
        if val == 0:
            opt = opt.with_(block_cache_enabled=False)
        else:
            opt = opt.with_(block_cache_enabled=True,
                            block_cache_capacity=val)
    if "PAPYRUSKV_FENCE_PRUNING" in env:
        opt = opt.with_(fence_pruning=int(env["PAPYRUSKV_FENCE_PRUNING"]) != 0)
    if "PAPYRUSKV_SCAN_CHUNK" in env:
        opt = opt.with_(scan_chunk=int(env["PAPYRUSKV_SCAN_CHUNK"]))
    if "PAPYRUSKV_GROUP_COMMIT" in env:
        # 0 disables; any other value is the window's byte budget
        val = int(env["PAPYRUSKV_GROUP_COMMIT"])
        if val == 0:
            opt = opt.with_(group_commit_interval=0.0, group_commit_bytes=0)
        else:
            opt = opt.with_(group_commit_bytes=val)
    if "PAPYRUSKV_FLUSH_PIPELINE" in env:
        opt = opt.with_(flush_pipeline=int(env["PAPYRUSKV_FLUSH_PIPELINE"]) != 0)
    if "PAPYRUSKV_COMPACTION_PARTITIONS" in env:
        opt = opt.with_(
            compaction_partitions=int(env["PAPYRUSKV_COMPACTION_PARTITIONS"])
        )
    if "PAPYRUSKV_REPLICAS" in env:
        replicas = int(env["PAPYRUSKV_REPLICAS"])
        # keep the pair valid: shrinking R below the current quorum
        # drags the quorum down with it
        opt = opt.with_(replicas=replicas,
                        write_quorum=min(opt.write_quorum, replicas))
    if "PAPYRUSKV_WRITE_QUORUM" in env:
        opt = opt.with_(write_quorum=int(env["PAPYRUSKV_WRITE_QUORUM"]))
    if "PAPYRUSKV_INDEX_REPLICATION" in env:
        opt = opt.with_(
            index_replication=int(env["PAPYRUSKV_INDEX_REPLICATION"]) != 0
        )
    if "PAPYRUSKV_INDEX_CACHE" in env:
        # 0 disables the whole plane; any other value is the byte budget
        val = int(env["PAPYRUSKV_INDEX_CACHE"])
        if val == 0:
            opt = opt.with_(index_replication=False)
        else:
            opt = opt.with_(index_cache_capacity=val)
    if "PAPYRUSKV_INDEX_PUSH" in env:
        opt = opt.with_(index_push_eager=int(env["PAPYRUSKV_INDEX_PUSH"]) != 0)
    return opt
