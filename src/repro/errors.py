"""Error codes and exceptions mirroring the PapyrusKV C API.

The paper's API functions all return a 32-bit integer error code
(``PAPYRUSKV_SUCCESS``, ``PAPYRUSKV_NOT_FOUND``, ...).  The Pythonic
object API raises exceptions instead; the functional compatibility API in
:mod:`repro.core.api` translates exceptions back into these codes.
"""

from __future__ import annotations

import enum


class ErrorCode(enum.IntEnum):
    """Integer error codes returned by the functional ``papyruskv_*`` API."""

    SUCCESS = 0
    NOT_FOUND = 1
    INVALID_DB = 2
    INVALID_KEY = 3
    INVALID_VALUE = 4
    INVALID_OPTION = 5
    INVALID_MODE = 6
    INVALID_PROTECTION = 7
    INVALID_EVENT = 8
    INVALID_RANK = 9
    PROTECTED = 10
    CLOSED = 11
    IO_ERROR = 12
    NOT_INITIALIZED = 13
    INTERNAL = 14
    CORRUPTED = 15
    TIMEOUT = 16
    REPLICA_STALE = 17
    MEMBERSHIP_EPOCH = 18
    QUORUM_LOST = 19
    METADATA_STALE = 20


#: Aliases matching the paper's spelling.
PAPYRUSKV_SUCCESS = ErrorCode.SUCCESS
PAPYRUSKV_NOT_FOUND = ErrorCode.NOT_FOUND
PAPYRUSKV_INVALID_DB = ErrorCode.INVALID_DB


class PapyrusError(Exception):
    """Base class for all PapyrusKV errors.

    Each subclass carries the :class:`ErrorCode` equivalent so the
    functional API can translate it.
    """

    code = ErrorCode.INTERNAL


class KeyNotFoundError(PapyrusError, KeyError):
    """The requested key does not exist (or is a tombstone)."""

    code = ErrorCode.NOT_FOUND


class InvalidDatabaseError(PapyrusError):
    """The database handle is invalid or already closed."""

    code = ErrorCode.INVALID_DB


class InvalidKeyError(PapyrusError, ValueError):
    """The key is empty or not a byte string."""

    code = ErrorCode.INVALID_KEY


class InvalidValueError(PapyrusError, ValueError):
    """The value is not a byte string."""

    code = ErrorCode.INVALID_VALUE


class InvalidOptionError(PapyrusError, ValueError):
    """A database option is malformed."""

    code = ErrorCode.INVALID_OPTION


class InvalidModeError(PapyrusError, ValueError):
    """Unknown consistency mode."""

    code = ErrorCode.INVALID_MODE


class InvalidProtectionError(PapyrusError, ValueError):
    """Unknown protection attribute."""

    code = ErrorCode.INVALID_PROTECTION


class ProtectionError(PapyrusError):
    """The operation conflicts with the database protection attribute

    (e.g. a put on a ``RDONLY`` database or a get on a ``WRONLY`` one).
    """

    code = ErrorCode.PROTECTED


class DatabaseClosedError(InvalidDatabaseError):
    """Operation attempted on a closed database."""

    code = ErrorCode.CLOSED


class NotInitializedError(PapyrusError):
    """The PapyrusKV environment has not been initialized."""

    code = ErrorCode.NOT_INITIALIZED


class StorageError(PapyrusError, OSError):
    """An error surfaced from the (simulated) NVM storage layer."""

    code = ErrorCode.IO_ERROR


class CorruptionError(StorageError, ValueError):
    """On-disk bytes failed checksum or structural validation.

    Subclasses :class:`StorageError` (it is a storage-layer failure and
    degrades like one) and :class:`ValueError` (pre-v2 callers caught
    the format layer's bare ``ValueError``).
    """

    code = ErrorCode.CORRUPTED


class TornWriteError(CorruptionError):
    """A file is shorter than its committed metadata says it must be —
    the signature of a write torn by a crash or a lying fsync."""

    code = ErrorCode.CORRUPTED


class RemoteTimeoutError(PapyrusError, TimeoutError):
    """A remote rank did not reply within the retry budget."""

    code = ErrorCode.TIMEOUT


class ReplicationError(PapyrusError):
    """Base class for replication-plane failures.

    Raised only when ``Options(replicas=...)`` is greater than one; the
    unreplicated paths never see these.
    """

    code = ErrorCode.INTERNAL


class ReplicaStaleError(ReplicationError):
    """A replica served (or was asked to serve) state it is known to be
    behind on — e.g. a read routed to a group member that has not yet
    caught up through re-replication.  Callers should retry against the
    acting primary or another live group member."""

    code = ErrorCode.REPLICA_STALE


class MembershipEpochError(ReplicationError):
    """A message carried a membership epoch that can no longer be
    honoured — most seriously, a rank learned that the rest of the group
    declared *it* dead.  In-flight traffic from a dead epoch is rejected
    deterministically (the sender re-routes against the current view);
    a self-death notice is unrecoverable and surfaces as this error."""

    code = ErrorCode.MEMBERSHIP_EPOCH


class MetadataStaleError(PapyrusError):
    """Replicated SSTable metadata no longer matches the owner's tables.

    Raised on the one-sided read path when the newest-ssid handshake
    fails — the owner's directory listing disagrees with the cached
    index view (a flush, compaction, or quarantine retired the tables
    the bundle describes), or a bundle the view references is missing
    from the cache.  Callers re-pull the view and retry once before
    falling back to the owner's handler."""

    code = ErrorCode.METADATA_STALE


class QuorumLostError(ReplicationError):
    """Fewer live replicas remain than ``write_quorum`` requires, so an
    acknowledged-durable put is impossible; the write is refused rather
    than silently under-replicated."""

    code = ErrorCode.QUORUM_LOST


def code_of(exc: BaseException) -> ErrorCode:
    """Map an exception to the closest :class:`ErrorCode`."""
    if isinstance(exc, PapyrusError):
        return exc.code
    if isinstance(exc, KeyError):
        return ErrorCode.NOT_FOUND
    if isinstance(exc, TimeoutError):
        return ErrorCode.TIMEOUT
    if isinstance(exc, (OSError, IOError)):
        return ErrorCode.IO_ERROR
    return ErrorCode.INTERNAL
