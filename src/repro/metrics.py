"""Run observability: roll up counters from every layer.

The simulator keeps counters everywhere — device resources
(ops/bytes/busy time), background workers, caches, per-database
operation statistics.  :func:`database_metrics` and
:func:`machine_metrics` roll them into plain dicts; :func:`format_report`
renders the operator-facing summary.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.simtime.resources import StripedResource, TimedResource


def _device_metrics(dev) -> Dict[str, Any]:
    if isinstance(dev, StripedResource):
        return {
            "kind": "striped",
            "stripes": dev.nstripes,
            "ops": dev.ops,
            "bytes": dev.bytes_moved,
            "busy_s": sum(s.busy_time for s in dev.stripes),
        }
    assert isinstance(dev, TimedResource)
    return {
        "kind": "device",
        "ops": dev.ops,
        "bytes": dev.bytes_moved,
        "busy_s": dev.busy_time,
    }


def database_metrics(db) -> Dict[str, Any]:
    """Counters for one rank's view of a database."""
    stats = db.stats
    out: Dict[str, Any] = {
        "name": db.name,
        "rank": db.rank,
        "puts": stats.puts,
        "gets": stats.gets,
        "deletes": stats.deletes,
        "local_puts": stats.local_puts,
        "remote_puts": stats.remote_puts,
        "local_gets": stats.local_gets,
        "remote_gets": stats.remote_gets,
        "flushes": stats.flushes,
        "flush_stalls": stats.flush_stalls,
        "flush_stall_s": stats.flush_stall_s,
        "compactions": stats.compactions,
        "compaction_majors": stats.compaction_majors,
        "compaction_partition_jobs": stats.compaction_partition_jobs,
        "group_commits": stats.group_commits,
        "group_commit_coalesced": stats.group_commit_coalesced,
        "migrations": stats.migrations,
        "bulk_batches": stats.bulk_batches,
        "bulk_keys": stats.bulk_keys,
        "bulk_owner_msgs": stats.bulk_owner_msgs,
        "corruptions_detected": stats.corruptions_detected,
        "tables_quarantined": stats.tables_quarantined,
        "tables_rebuilt": stats.tables_rebuilt,
        "remote_retries": stats.remote_retries,
        "remote_timeouts": stats.remote_timeouts,
        "fence_skips": stats.fence_skips,
        "bloom_skips": stats.bloom_skips,
        "replica_msgs": stats.replica_msgs,
        "replica_pairs": stats.replica_pairs,
        "replica_pairs_applied": stats.replica_pairs_applied,
        "heartbeats_sent": stats.heartbeats_sent,
        "epoch_rejections": stats.epoch_rejections,
        "rank_deaths": stats.rank_deaths,
        "rereplicated_pairs": stats.rereplicated_pairs,
        "failover_gets": stats.failover_gets,
        "index_repl_hits": stats.index_repl_hits,
        "index_repl_misses": stats.index_repl_misses,
        "index_repl_stale": stats.index_repl_stale,
        "index_repl_fallbacks": stats.index_repl_fallbacks,
        "index_pulls": stats.index_pulls,
        "index_publishes": stats.index_publishes,
        "scans": stats.scans,
        "scan_tables_pruned": stats.scan_tables_pruned,
        "scan_blocks_read": stats.scan_blocks_read,
        "scan_chunks_shipped": stats.scan_chunks_shipped,
        "scan_peak_buffered": stats.scan_peak_buffered,
        "get_tiers": dict(stats.get_tiers),
        "sstables": len(db.ssids),
        "memtable_bytes": db.local_mt.size_bytes,
        "remote_memtable_bytes": db.remote_mt.size_bytes,
        "compaction_busy_s": db.compaction_worker.busy_time,
        "dispatcher_busy_s": db.dispatcher_worker.busy_time,
        "flush_build_busy_s": db.flush_build_worker.busy_time,
        "flush_sync_busy_s": db.flush_sync_worker.busy_time,
    }
    if db.local_cache is not None:
        out["local_cache"] = {
            "entries": len(db.local_cache),
            "bytes": db.local_cache.size_bytes,
            "hits": db.local_cache.hits,
            "misses": db.local_cache.misses,
            "evictions": db.local_cache.evictions,
        }
    out["remote_cache"] = {
        "entries": len(db.remote_cache),
        "bytes": db.remote_cache.size_bytes,
        "hits": db.remote_cache.hits,
        "misses": db.remote_cache.misses,
    }
    if db.block_cache is not None:
        out["block_cache"] = db.block_cache.counters()
    out["latency"] = db.latency.summary()
    from repro.analysis.runtime import get_detector

    det = get_detector()
    if det is not None:
        out["race_detect"] = det.summary()
    return out


def machine_metrics(machine) -> Dict[str, Any]:
    """Device-level counters for the whole machine."""
    out: Dict[str, Any] = {"nvm": {}, "lustre": {}}
    for i, (w, r) in enumerate(zip(machine._nvm_write, machine._nvm_read)):
        out["nvm"][f"domain{i}"] = {
            "write": _device_metrics(w),
            "read": _device_metrics(r),
        }
    out["lustre"] = {
        "write": _device_metrics(machine._lustre_write),
        "read": _device_metrics(machine._lustre_read),
    }
    return out


def format_report(db_metrics: Dict[str, Any]) -> str:
    """Human-readable one-database report."""
    m = db_metrics
    lines = [
        f"database {m['name']!r} rank {m['rank']}:",
        f"  ops: {m['puts']} puts ({m['remote_puts']} remote), "
        f"{m['gets']} gets ({m['remote_gets']} remote), "
        f"{m['deletes']} deletes",
        f"  lsm: {m['flushes']} flushes, {m['compactions']} compactions, "
        f"{m['migrations']} migrations, {m['sstables']} live SSTables",
        f"  background: compaction {m['compaction_busy_s'] * 1e3:.3f} ms, "
        f"dispatcher {m['dispatcher_busy_s'] * 1e3:.3f} ms, "
        f"flush build {m.get('flush_build_busy_s', 0.0) * 1e3:.3f} ms, "
        f"sync {m.get('flush_sync_busy_s', 0.0) * 1e3:.3f} ms (virtual)",
    ]
    if m.get("group_commits") or m.get("flush_stalls") \
            or m.get("compaction_partition_jobs"):
        lines.append(
            f"  write path: {m.get('group_commits', 0)} commit windows "
            f"({m.get('group_commit_coalesced', 0)} coalesced puts), "
            f"{m.get('flush_stalls', 0)} flush stalls "
            f"({m.get('flush_stall_s', 0.0) * 1e3:.3f} ms), "
            f"{m.get('compaction_partition_jobs', 0)} partition jobs "
            f"({m.get('compaction_majors', 0)} majors)"
        )
    if m.get("bulk_batches"):
        lines.append(
            f"  bulk: {m['bulk_batches']} batches, {m['bulk_keys']} keys, "
            f"{m['bulk_owner_msgs']} per-owner messages"
        )
    if (m.get("corruptions_detected") or m.get("tables_quarantined")
            or m.get("tables_rebuilt") or m.get("remote_timeouts")):
        lines.append(
            f"  robustness: {m['corruptions_detected']} corruptions "
            f"detected, {m['tables_rebuilt']} tables rebuilt, "
            f"{m['tables_quarantined']} quarantined, "
            f"{m['remote_retries']} remote retries "
            f"({m['remote_timeouts']} timeouts)"
        )
    if m.get("replica_msgs") or m.get("rank_deaths") \
            or m.get("replica_pairs_applied"):
        lines.append(
            f"  replication: {m.get('replica_msgs', 0)} fan-out msgs "
            f"({m.get('replica_pairs', 0)} pairs sent, "
            f"{m.get('replica_pairs_applied', 0)} applied), "
            f"{m.get('heartbeats_sent', 0)} heartbeats, "
            f"{m.get('epoch_rejections', 0)} epoch rejections, "
            f"{m.get('rank_deaths', 0)} deaths declared, "
            f"{m.get('rereplicated_pairs', 0)} pairs re-replicated, "
            f"{m.get('failover_gets', 0)} failover gets"
        )
    if (m.get("index_repl_hits") or m.get("index_pulls")
            or m.get("index_publishes")):
        lines.append(
            f"  index repl: {m.get('index_repl_hits', 0)} one-sided hits, "
            f"{m.get('index_repl_misses', 0)} misses, "
            f"{m.get('index_repl_stale', 0)} stale, "
            f"{m.get('index_repl_fallbacks', 0)} fallbacks, "
            f"{m.get('index_pulls', 0)} pulls, "
            f"{m.get('index_publishes', 0)} publishes"
        )
    if m.get("get_tiers"):
        tiers = ", ".join(f"{k}={v}" for k, v in sorted(m["get_tiers"].items()))
        lines.append(f"  get tiers: {tiers}")
    if "local_cache" in m:
        c = m["local_cache"]
        lines.append(
            f"  local cache: {c['entries']} entries, "
            f"{c['hits']}/{c['hits'] + c['misses']} hits"
        )
    if m.get("fence_skips") or m.get("bloom_skips"):
        lines.append(
            f"  read path: {m['fence_skips']} fence skips, "
            f"{m['bloom_skips']} bloom skips"
        )
    if m.get("scans"):
        lines.append(
            f"  scan path: {m['scans']} scans, "
            f"{m.get('scan_tables_pruned', 0)} tables pruned, "
            f"{m.get('scan_blocks_read', 0)} blocks read, "
            f"{m.get('scan_chunks_shipped', 0)} chunks shipped "
            f"(peak {m.get('scan_peak_buffered', 0)} pairs buffered)"
        )
    if "block_cache" in m:
        b = m["block_cache"]
        lines.append(
            f"  block cache: {b['entries']} blocks "
            f"({b['bytes'] / 1024:.0f} KB), "
            f"{b['hits']}/{b['hits'] + b['misses']} hits, "
            f"{b['evictions']} evictions"
        )
    return "\n".join(lines)
