"""MiniKV store: MemTable + two-level table hierarchy (LevelDB-style).

Writes land in an in-memory MemTable (its *own* structure, separate
from any distribution layer above — the duplication the paper charges
MDHIM for).  Full MemTables flush to level-0 files, which may overlap;
when L0 grows past a threshold all of L0 merges with L1 into sorted,
non-overlapping L1 files.  Gets check MemTable, then L0 newest-first,
then the one overlapping L1 file.

All timing is explicit: each call takes and returns a virtual time, so
the caller (a rank's main timeline or MDHIM's server loop) charges the
right clock.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.baselines.minikv.table import Item, Table, write_table
from repro.nvm.posixfs import PosixStore
from repro.util.rbtree import RedBlackTree


class MiniKV:
    """A single-node LSM store rooted at ``directory`` in ``store``."""

    def __init__(
        self,
        store: PosixStore,
        directory: str,
        memtable_capacity: int = 1 << 20,
        l0_limit: int = 4,
        cpu=None,
    ) -> None:
        self.store = store
        self.directory = directory
        self.memtable_capacity = memtable_capacity
        self.l0_limit = l0_limit
        self.cpu = cpu
        self._mem = RedBlackTree()
        self._mem_bytes = 0
        self._next_file = 1
        self._l0: List[Table] = []  # oldest first
        self._l1: List[Table] = []  # sorted by key range, non-overlapping
        self._lock = threading.RLock()
        self.stats: Dict[str, int] = {
            "puts": 0, "gets": 0, "deletes": 0, "flushes": 0, "compactions": 0,
        }
        store.makedirs(directory)

    # ---------------------------------------------------------------- costing
    def _charge(self, t: float, nbytes: int) -> float:
        if self.cpu is None:
            return t
        return t + self.cpu.kv_op_s + nbytes / self.cpu.memcpy_Bps

    # ------------------------------------------------------------------ write
    def put(self, key: bytes, value: bytes, t: float,
            tombstone: bool = False) -> float:
        """Insert/replace; returns the virtual completion time.

        The value is **copied** into the MemTable — LevelDB owns its
        buffers, so a layered client pays this copy on top of its own.
        """
        with self._lock:
            self.stats["puts"] += 1
            t = self._charge(t, len(key) + len(value))
            old = self._mem.get(key)
            if old is not None:
                self._mem_bytes -= len(key) + len(old[0])
            self._mem.insert(key, (bytes(value), tombstone))
            self._mem_bytes += len(key) + len(value)
            if self._mem_bytes >= self.memtable_capacity:
                t = self._flush(t)
            return t

    def delete(self, key: bytes, t: float) -> float:
        """Delete = put of a tombstone (LevelDB semantics)."""
        self.stats["deletes"] += 1
        return self.put(key, b"", t, tombstone=True)

    def _flush(self, t: float) -> float:
        """MemTable -> one L0 table (synchronous, unlike PapyrusKV).

        LevelDB stalls writers when flushes/compactions fall behind; the
        synchronous model reproduces that back-pressure at full strength.
        """
        items: List[Item] = [
            (k, v, tomb) for k, (v, tomb) in self._mem.items()
        ]
        if not items:
            return t
        path = f"{self.directory}/{self._next_file:08d}.ldb"
        self._next_file += 1
        _, t = write_table(self.store, path, items, t)
        self._l0.append(Table(self.store, path))
        self._mem = RedBlackTree()
        self._mem_bytes = 0
        self.stats["flushes"] += 1
        if len(self._l0) > self.l0_limit:
            t = self._compact_l0(t)
        return t

    def _compact_l0(self, t: float) -> float:
        """Merge all of L0 and L1 into fresh non-overlapping L1 files."""
        runs: List[List[Item]] = []
        for table in self._l1 + self._l0:  # oldest first; L1 older than L0
            items, t = table.scan(t)
            runs.append(items)
        merged: Dict[bytes, Tuple[bytes, bool]] = {}
        for run in runs:  # later runs overwrite earlier: newest wins
            for k, v, tomb in run:
                merged[k] = (v, tomb)
        live = sorted(
            (k, v, tomb) for k, (v, tomb) in merged.items() if not tomb
        )
        for table in self._l1 + self._l0:
            t = table.delete(t)
        self._l1 = []
        self._l0 = []
        # split into ~2MB non-overlapping L1 files
        target = 2 << 20
        chunk: List[Item] = []
        size = 0
        for item in live:
            chunk.append(item)
            size += len(item[0]) + len(item[1])
            if size >= target:
                t = self._write_l1(chunk, t)
                chunk, size = [], 0
        if chunk:
            t = self._write_l1(chunk, t)
        self.stats["compactions"] += 1
        return t

    def _write_l1(self, items: List[Item], t: float) -> float:
        path = f"{self.directory}/{self._next_file:08d}.ldb"
        self._next_file += 1
        _, t = write_table(self.store, path, items, t)
        self._l1.append(Table(self.store, path))
        return t

    # ------------------------------------------------------------------- read
    def get(self, key: bytes, t: float) -> Tuple[Optional[bytes], float]:
        """Returns (value or None, completion time); tombstones are None."""
        with self._lock:
            self.stats["gets"] += 1
            t = self._charge(t, len(key))
            entry = self._mem.get(key)
            if entry is not None:
                value, tomb = entry
                return (None if tomb else value), t
            for table in reversed(self._l0):
                item, t = table.get(key, t)
                if item is not None:
                    _, value, tomb = item
                    return (None if tomb else value), t
            for table in self._l1:
                rng, t = table.key_range(t)
                if rng[0] <= key <= rng[1]:
                    item, t = table.get(key, t)
                    if item is not None:
                        _, value, tomb = item
                        return (None if tomb else value), t
                    break
            return None, t

    # --------------------------------------------------------------- flushing
    def flush_all(self, t: float) -> float:
        """Force the MemTable to disk (shutdown path)."""
        with self._lock:
            return self._flush(t)

    def file_count(self) -> int:
        """Number of live table files across L0 and L1."""
        with self._lock:
            return len(self._l0) + len(self._l1)

    def close(self, t: float) -> float:
        """Flush and shut down; returns the virtual completion time."""
        return self.flush_all(t)
