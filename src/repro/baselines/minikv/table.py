"""MiniKV's block-based table file format (LevelDB-style).

One ``.ldb`` file per table::

    [data block 0][data block 1]...[index block][footer]

Each data block holds consecutive sorted records; the index block maps
each block's last key to its (offset, length); the fixed-size footer
locates the index block.  Unlike PapyrusKV's SSTables there is no
separate bloom-filter file and no per-record index — a lookup reads the
index block, then the whole candidate data block, mirroring LevelDB's
coarser I/O granularity.
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from typing import Iterator, List, Optional, Tuple

from repro.nvm.posixfs import PosixStore

_FOOTER = struct.Struct("<QQI")
FOOTER_MAGIC = 0x4C444231  # "LDB1"
_REC = struct.Struct("<IIB")
DEFAULT_BLOCK_SIZE = 4096

#: (key, value, tombstone)
Item = Tuple[bytes, bytes, bool]


def _encode_item(key: bytes, value: bytes, tombstone: bool) -> bytes:
    return _REC.pack(len(key), len(value), 1 if tombstone else 0) + key + value


def decode_block(blob: bytes) -> Iterator[Item]:
    """Yield the (key, value, tombstone) items of one data block."""
    pos = 0
    end = len(blob)
    while pos < end:
        keylen, vallen, flags = _REC.unpack_from(blob, pos)
        pos += _REC.size
        key = bytes(blob[pos:pos + keylen])
        pos += keylen
        value = bytes(blob[pos:pos + vallen])
        pos += vallen
        yield key, value, bool(flags)


class TableBuilder:
    """Accumulates sorted items into blocks and writes one table file."""

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        self.block_size = block_size
        self._blocks: List[bytes] = []
        self._last_keys: List[bytes] = []
        self._current = bytearray()
        self._current_last: Optional[bytes] = None
        self._prev_key: Optional[bytes] = None
        self.count = 0

    def add(self, key: bytes, value: bytes, tombstone: bool = False) -> None:
        """Append one item; keys must arrive strictly sorted."""
        if self._prev_key is not None and key <= self._prev_key:
            raise ValueError("items must be strictly sorted by key")
        self._prev_key = key
        self._current += _encode_item(key, value, tombstone)
        self._current_last = key
        self.count += 1
        if len(self._current) >= self.block_size:
            self._finish_block()

    def _finish_block(self) -> None:
        if not self._current:
            return
        self._blocks.append(bytes(self._current))
        self._last_keys.append(self._current_last or b"")
        self._current = bytearray()
        self._current_last = None

    def finish(self) -> bytes:
        """Serialize the complete table file."""
        self._finish_block()
        out = bytearray()
        index = bytearray()
        index += struct.pack("<I", len(self._blocks))
        for block, last_key in zip(self._blocks, self._last_keys):
            offset = len(out)
            out += block
            index += struct.pack("<QQI", offset, len(block), len(last_key))
            index += last_key
        index_offset = len(out)
        out += index
        out += _FOOTER.pack(index_offset, len(index), FOOTER_MAGIC)
        return bytes(out)


class Table:
    """Reader for one table file."""

    def __init__(self, store: PosixStore, path: str) -> None:
        self.store = store
        self.path = path
        self._index: Optional[List[Tuple[bytes, int, int]]] = None
        #: (smallest, largest) key range, filled on index load
        self._range: Optional[Tuple[bytes, bytes]] = None

    def _load_index(self, t: float) -> Tuple[List[Tuple[bytes, int, int]], float]:
        if self._index is not None:
            return self._index, t
        size = self.store.size(self.path)
        footer_blob, t = self.store.read(
            self.path, t, size - _FOOTER.size, _FOOTER.size
        )
        index_offset, index_len, magic = _FOOTER.unpack(footer_blob)
        if magic != FOOTER_MAGIC:
            raise ValueError(f"bad table footer magic {magic:#x}")
        blob, t = self.store.read(self.path, t, index_offset, index_len)
        (nblocks,) = struct.unpack_from("<I", blob, 0)
        pos = 4
        index: List[Tuple[bytes, int, int]] = []
        for _ in range(nblocks):
            offset, length, klen = struct.unpack_from("<QQI", blob, pos)
            pos += 20
            last_key = bytes(blob[pos:pos + klen])
            pos += klen
            index.append((last_key, offset, length))
        self._index = index
        return index, t

    def get(self, key: bytes, t: float) -> Tuple[Optional[Item], float]:
        """Find ``key``: index-block lookup, then one data-block read."""
        index, t = self._load_index(t)
        if not index:
            return None, t
        keys = [e[0] for e in index]
        bi = bisect_left(keys, key)
        if bi >= len(index):
            return None, t
        _, offset, length = index[bi]
        block, t = self.store.read(self.path, t, offset, length)
        for k, v, tomb in decode_block(block):
            if k == key:
                return (k, v, tomb), t
            if k > key:
                break
        return None, t

    def scan(self, t: float) -> Tuple[List[Item], float]:
        """Read every item in key order (compaction input)."""
        index, t = self._load_index(t)
        items: List[Item] = []
        for _, offset, length in index:
            block, t = self.store.read(self.path, t, offset, length)
            items.extend(decode_block(block))
        return items, t

    def key_range(self, t: float) -> Tuple[Tuple[bytes, bytes], float]:
        """(smallest, largest) key in the table."""
        if self._range is not None:
            return self._range, t
        index, t = self._load_index(t)
        if not index:
            self._range = (b"", b"")
            return self._range, t
        first_block, t = self.store.read(
            self.path, t, index[0][1], index[0][2]
        )
        smallest = next(decode_block(first_block))[0]
        largest = index[-1][0]
        self._range = (smallest, largest)
        return self._range, t

    def delete(self, t: float) -> float:
        """Remove the table file; returns the virtual completion time."""
        return self.store.delete(self.path, t)


def write_table(store: PosixStore, path: str, items: List[Item],
                t: float, block_size: int = DEFAULT_BLOCK_SIZE
                ) -> Tuple[int, float]:
    """Build and write one table; returns (nbytes, completion time)."""
    builder = TableBuilder(block_size)
    for key, value, tombstone in items:
        builder.add(key, value, tombstone)
    blob = builder.finish()
    t = store.write(path, blob, t)
    return len(blob), t
