"""MiniKV: a LevelDB-like single-node LSM key-value store.

Follows LevelDB's design rather than PapyrusKV's: a write-ahead
MemTable flushed to level-0 table files, leveled compaction into a
sorted, non-overlapping level 1, and single-file block-based tables
(data blocks + index block + footer) instead of PapyrusKV's three-file
SSTables.  Used as the local data store under the MDHIM baseline,
exactly as the paper's evaluation uses LevelDB.
"""

from repro.baselines.minikv.store import MiniKV
from repro.baselines.minikv.table import Table, TableBuilder

__all__ = ["MiniKV", "Table", "TableBuilder"]
