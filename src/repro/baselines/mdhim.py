"""An MDHIM-like parallel embedded KVS (the Figure 11 comparator).

MDHIM "presents a communication/distribution layer on top of the local
data store such as LevelDB"; the paper attributes its deficit to two
structural properties, both reproduced here:

* **duplicated memory structures** — the distribution layer marshals
  every key/value into its own message buffer, and the local store
  (MiniKV) then copies it again into its MemTable; PapyrusKV's single
  framework pays one copy;
* **no SSTable sharing** — every remote get ships the value over the
  network even when requester and owner share an NVM device, because
  "MDHIM cannot share the SSTables between multiple independent LevelDB
  instances".

Like MDHIM, all operations are synchronous request/response — there is
no relaxed-mode write staging.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.minikv import MiniKV
from repro.mpi.comm import ANY_SOURCE, ANY_TAG, AbortedError, Comm
from repro.mpi.launcher import RankContext, bind_context
from repro.simtime.clock import VirtualClock
from repro.util.hashing import owner_rank

_PUT = 1
_GET = 2
_DEL = 3
_STOP = 4


@dataclass
class _Req:
    kind: int
    key: bytes
    value: bytes
    seq: int

    def wire_nbytes(self) -> int:
        return 24 + len(self.key) + len(self.value)


@dataclass
class _Rsp:
    seq: int
    found: bool
    value: bytes = b""

    def wire_nbytes(self) -> int:
        return 16 + len(self.value)


class MDHIM:
    """Per-rank handle to one MDHIM-like distributed store.

    Collective constructor: every rank must create it at the same point.

    Parameters
    ----------
    ctx: the rank's context.
    name: store name (directory prefix).
    repository: ``"nvm"`` or ``"lustre"`` — Figure 11 runs both.
    memtable_capacity: MiniKV write-buffer size in bytes.
    """

    def __init__(
        self,
        ctx: RankContext,
        name: str,
        repository: str = "nvm",
        memtable_capacity: int = 1 << 20,
    ) -> None:
        self.ctx = ctx
        self.name = name
        self.rank = ctx.world_rank
        self.nranks = ctx.nranks
        self._srv: Comm = ctx.comm.dup()
        self._rsp: Comm = ctx.comm.dup()
        self._coll: Comm = ctx.comm.dup()
        machine = ctx.machine
        store = (
            machine.nvm_store(self.rank)
            if repository == "nvm" else machine.lustre_store()
        )
        self.local = MiniKV(
            store, f"mdhim_{name}/rank{self.rank}",
            memtable_capacity=memtable_capacity, cpu=ctx.system.cpu,
        )
        self._next_seq = self.rank + 1
        self._closed = False
        self._server = threading.Thread(
            target=self._server_main, name=f"mdhim-srv-{name}-r{self.rank}",
            daemon=True,
        )
        self._coll.barrier()
        self._server.start()
        self._coll.barrier()

    # -------------------------------------------------------------- dispatch
    def _owner(self, key: bytes) -> int:
        return owner_rank(key, self.nranks)

    def _marshal_charge(self, nbytes: int) -> None:
        """The distribution layer's own buffer copy (duplicated memory)."""
        cpu = self.ctx.system.cpu
        self.ctx.clock.advance(cpu.kv_op_s + nbytes / cpu.memcpy_Bps)

    def put(self, key: bytes, value: bytes) -> None:
        """Synchronous put through the distribution layer."""
        self._check_open()
        key, value = bytes(key), bytes(value)
        self._marshal_charge(len(key) + len(value))
        owner = self._owner(key)
        if owner == self.rank:
            # local: skip the network but NOT the second (store-side) copy
            end = self.local.put(key, value, self.ctx.clock.now)
            self.ctx.clock.advance_to(end)
            return
        seq = self._take_seq()
        self._srv.send(_Req(_PUT, key, value, seq), owner, tag=0)
        rsp = self._rsp.recv(source=owner, tag=seq)
        assert rsp.seq == seq

    def get(self, key: bytes) -> Optional[bytes]:
        """Synchronous get; returns None when absent."""
        self._check_open()
        key = bytes(key)
        self._marshal_charge(len(key))
        owner = self._owner(key)
        if owner == self.rank:
            value, end = self.local.get(key, self.ctx.clock.now)
            self.ctx.clock.advance_to(end)
        else:
            seq = self._take_seq()
            self._srv.send(_Req(_GET, key, b"", seq), owner, tag=0)
            rsp = self._rsp.recv(source=owner, tag=seq)
            value = rsp.value if rsp.found else None
        if value is not None:
            # unmarshal into the client's buffer: the layer's second copy
            self._marshal_charge(len(value))
        return value

    def delete(self, key: bytes) -> None:
        """Synchronous delete through the distribution layer."""
        self._check_open()
        key = bytes(key)
        self._marshal_charge(len(key))
        owner = self._owner(key)
        if owner == self.rank:
            end = self.local.delete(key, self.ctx.clock.now)
            self.ctx.clock.advance_to(end)
            return
        seq = self._take_seq()
        self._srv.send(_Req(_DEL, key, b"", seq), owner, tag=0)
        rsp = self._rsp.recv(source=owner, tag=seq)
        assert rsp.seq == seq

    def barrier(self) -> None:
        """Collective barrier (MDHIM piggybacks on MPI_Barrier)."""
        self._coll.barrier()

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += self.nranks
        return seq

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"MDHIM store {self.name!r} is closed")

    # ---------------------------------------------------------------- server
    def _server_main(self) -> None:
        """Range-server loop: one MiniKV op per request."""
        main_ctx = self.ctx
        sclock = VirtualClock(
            start=main_ctx.clock.now, label=f"mdhim-srv-r{self.rank}"
        )
        bind_context(RankContext(
            world_rank=main_ctx.world_rank, nranks=main_ctx.nranks,
            clock=sclock, comm=main_ctx.comm, system=main_ctx.system,
            machine=main_ctx.machine,
        ))
        cpu = main_ctx.system.cpu
        try:
            while True:
                status: dict = {}
                try:
                    req = self._srv.recv(ANY_SOURCE, ANY_TAG, status=status)
                except AbortedError:
                    return
                if req.kind == _STOP:
                    return
                source = status["source"]
                # server-side unmarshal from the message buffer (copy #2)
                sclock.advance(
                    cpu.kv_op_s + len(req.key + req.value) / cpu.memcpy_Bps
                )
                if req.kind == _PUT:
                    end = self.local.put(req.key, req.value, sclock.now)
                    sclock.advance_to(end)
                    self._rsp.send(_Rsp(req.seq, True), source, tag=req.seq)
                elif req.kind == _DEL:
                    end = self.local.delete(req.key, sclock.now)
                    sclock.advance_to(end)
                    self._rsp.send(_Rsp(req.seq, True), source, tag=req.seq)
                elif req.kind == _GET:
                    value, end = self.local.get(req.key, sclock.now)
                    sclock.advance_to(end)
                    self._rsp.send(
                        _Rsp(req.seq, value is not None, value or b""),
                        source, tag=req.seq,
                    )
                else:  # pragma: no cover - protocol error
                    raise TypeError(f"bad MDHIM request kind {req.kind}")
        finally:
            bind_context(None)

    # ----------------------------------------------------------------- close
    def close(self) -> None:
        """Collective close: flush the local store, stop the server."""
        if self._closed:
            return
        self._coll.barrier()
        self._srv.send(_Req(_STOP, b"", b"", 0), self.rank, tag=0)
        self._server.join(30.0)
        end = self.local.close(self.ctx.clock.now)
        self.ctx.clock.advance_to(end)
        self._closed = True
        self._coll.barrier()

    def __enter__(self) -> "MDHIM":
        return self

    def __exit__(self, *exc) -> None:
        if not self._closed:
            self.close()
