"""Comparator systems from the paper's evaluation.

* :mod:`repro.baselines.minikv` — a LevelDB-like single-node LSM store
  (the local data store MDHIM runs on);
* :mod:`repro.baselines.mdhim` — an MDHIM-like parallel embedded KVS: a
  communication/distribution layer stacked on per-rank MiniKV instances,
  with the duplicated memory structures and extra copies between the two
  layers that Figure 11 attributes MDHIM's overhead to.
"""

from repro.baselines.mdhim import MDHIM
from repro.baselines.minikv import MiniKV

__all__ = ["MDHIM", "MiniKV"]
