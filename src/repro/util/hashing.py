"""Key hashing and owner-rank mapping.

PapyrusKV "hashes the key and divides the result by the total number of
running MPI ranks; the remainder maps the key to the owner rank"
(paper §2.4).  The built-in hash here is 64-bit FNV-1a; applications may
register a custom hash function through ``papyruskv_option_t`` exactly as
the paper's load-balancing hook allows (§2.4, Figure 12).
"""

from __future__ import annotations

from typing import Callable, Optional

_MASK64 = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

#: Signature of a custom hash function: bytes -> unsigned int.
HashFunction = Callable[[bytes], int]


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash (the runtime's built-in hash function)."""
    h = _FNV_OFFSET
    for b in data:
        h ^= b
        h = (h * _FNV_PRIME) & _MASK64
    return h


def builtin_key_hash(key: bytes) -> int:
    """The PapyrusKV runtime's default key hash."""
    return fnv1a_64(key)


def owner_rank(key: bytes, nranks: int, hash_fn: Optional[HashFunction] = None) -> int:
    """Map ``key`` to its owner rank: ``hash(key) % nranks``."""
    if nranks <= 0:
        raise ValueError("nranks must be positive")
    fn = hash_fn or builtin_key_hash
    return fn(key) % nranks
