"""Bloom filter for SSTable membership tests.

Each SSTable carries a bloom-filter file; a get opens it first "to
determine whether the SSTable can be skipped" (paper §2.6).  The filter
guarantees no false negatives: if ``key in filter`` is False the key is
definitely not in the SSTable's data file.

The implementation uses the standard Kirsch-Mitzenmacher double-hashing
scheme (k probe positions derived from two 64-bit FNV hashes), the same
approach used by LevelDB.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.util.hashing import fnv1a_64

_FNV2_OFFSET = 0x6C62272E07BB0142
_MASK64 = (1 << 64) - 1


def _hash2(data: bytes) -> int:
    """A second independent 64-bit hash (FNV over the reversed bytes)."""
    h = _FNV2_OFFSET
    for b in reversed(data):
        h ^= b
        h = (h * 0x100000001B3) & _MASK64
    return h


class BloomFilter:
    """Fixed-size bloom filter over byte-string keys."""

    __slots__ = ("nbits", "nhashes", "_bits", "count")

    def __init__(self, nbits: int, nhashes: int) -> None:
        if nbits <= 0:
            raise ValueError("nbits must be positive")
        if nhashes <= 0:
            raise ValueError("nhashes must be positive")
        self.nbits = nbits
        self.nhashes = nhashes
        self._bits = bytearray((nbits + 7) // 8)
        self.count = 0

    # ---------------------------------------------------------------- sizing
    @classmethod
    def for_capacity(cls, n: int, fp_rate: float = 0.01) -> "BloomFilter":
        """Size a filter for ``n`` keys at the requested false-positive rate."""
        n = max(1, n)
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        nbits = max(8, int(math.ceil(-n * math.log(fp_rate) / (math.log(2) ** 2))))
        nhashes = max(1, int(round(nbits / n * math.log(2))))
        return cls(nbits, nhashes)

    # ------------------------------------------------------------- operations
    def _positions(self, key: bytes) -> Iterable[int]:
        h1 = fnv1a_64(key)
        h2 = _hash2(key) | 1  # odd => full-period stepping
        nbits = self.nbits
        for i in range(self.nhashes):
            yield ((h1 + i * h2) & _MASK64) % nbits

    def add(self, key: bytes) -> None:
        """Insert ``key`` into the filter."""
        bits = self._bits
        for pos in self._positions(key):
            bits[pos >> 3] |= 1 << (pos & 7)
        self.count += 1

    def __contains__(self, key: bytes) -> bool:
        bits = self._bits
        for pos in self._positions(key):
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def may_contain(self, key: bytes) -> bool:
        """Alias of ``key in filter``; False means definitely absent."""
        return key in self

    # ------------------------------------------------------------- serialize
    def to_bytes(self) -> bytes:
        """Serialize as ``nbits(8) nhashes(4) count(8) bitvector``."""
        header = self.nbits.to_bytes(8, "little") + self.nhashes.to_bytes(
            4, "little"
        ) + self.count.to_bytes(8, "little")
        return header + bytes(self._bits)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "BloomFilter":
        if len(blob) < 20:
            raise ValueError("bloom filter blob too short")
        nbits = int.from_bytes(blob[0:8], "little")
        nhashes = int.from_bytes(blob[8:12], "little")
        count = int.from_bytes(blob[12:20], "little")
        bf = cls(nbits, nhashes)
        body = blob[20:]
        if len(body) != len(bf._bits):
            raise ValueError("bloom filter bit vector length mismatch")
        bf._bits = bytearray(body)
        bf.count = count
        return bf

    def __len__(self) -> int:
        return self.count

    def fill_ratio(self) -> float:
        """Fraction of set bits (diagnostic for FP-rate estimation)."""
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self.nbits
