"""A classic red-black tree keyed by byte strings.

The paper states that each MemTable "is implemented as a red-black tree
indexed by key ... insert, lookup, and delete operations take O(log n)
time".  We implement the standard CLRS red-black tree with a sentinel NIL
node so MemTables here have the same asymptotics and iteration order
(sorted by key) as the original.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

RED = 0
BLACK = 1


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: Any, value: Any, color: int, nil: "_Node | None"):
        self.key = key
        self.value = value
        self.color = color
        self.left = nil
        self.right = nil
        self.parent = nil

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = "R" if self.color == RED else "B"
        return f"<Node {self.key!r} {c}>"


class RedBlackTree:
    """Mutable sorted map with O(log n) insert/lookup/delete.

    Keys may be any totally ordered type (PapyrusKV uses ``bytes``).
    Inserting an existing key replaces its value, mirroring the paper's
    "deletes the old one before it inserts the new one" semantics.
    """

    __slots__ = ("_nil", "_root", "_size")

    def __init__(self) -> None:
        nil = _Node(None, None, BLACK, None)
        nil.left = nil.right = nil.parent = nil
        self._nil = nil
        self._root = nil
        self._size = 0

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not None

    def _find(self, key: Any) -> Optional[_Node]:
        node = self._root
        nil = self._nil
        while node is not nil:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    def get(self, key: Any, default: Any = None) -> Any:
        """Value for ``key``, or ``default`` when absent."""
        node = self._find(key)
        return default if node is None else node.value

    def __getitem__(self, key: Any) -> Any:
        node = self._find(key)
        if node is None:
            raise KeyError(key)
        return node.value

    # ----------------------------------------------------------------- rotate
    def _rotate_left(self, x: _Node) -> None:
        nil = self._nil
        y = x.right
        x.right = y.left
        if y.left is not nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        nil = self._nil
        y = x.left
        x.left = y.right
        if y.right is not nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    # ----------------------------------------------------------------- insert
    def insert(self, key: Any, value: Any) -> bool:
        """Insert ``key``→``value``. Returns True if the key was new."""
        nil = self._nil
        parent = nil
        node = self._root
        while node is not nil:
            parent = node
            if key == node.key:
                node.value = value
                return False
            node = node.left if key < node.key else node.right
        fresh = _Node(key, value, RED, nil)
        fresh.parent = parent
        if parent is nil:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        self._insert_fixup(fresh)
        return True

    __setitem__ = insert

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color == RED:
            gp = z.parent.parent
            if z.parent is gp.left:
                uncle = gp.right
                if uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = gp.left
                if uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self._root.color = BLACK

    # ----------------------------------------------------------------- delete
    def delete(self, key: Any) -> Any:
        """Remove ``key`` and return its value. Raises KeyError if absent."""
        node = self._find(key)
        if node is None:
            raise KeyError(key)
        value = node.value
        self._delete_node(node)
        self._size -= 1
        return value

    def pop(self, key: Any, default: Any = ...) -> Any:
        """Remove and return; ``default`` (if given) when absent."""
        try:
            return self.delete(key)
        except KeyError:
            if default is ...:
                raise
            return default

    __delitem__ = delete

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _minimum(self, node: _Node) -> _Node:
        nil = self._nil
        while node.left is not nil:
            node = node.left
        return node

    def _delete_node(self, z: _Node) -> None:
        nil = self._nil
        y = z
        y_color = y.color
        if z.left is nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_color == BLACK:
            self._delete_fixup(x)

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self._root and x.color == BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color == RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color == BLACK and w.right.color == BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color == BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self._root
            else:
                w = x.parent.left
                if w.color == RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color == BLACK and w.left.color == BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color == BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self._root
        x.color = BLACK

    # -------------------------------------------------------------- iteration
    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) pairs in ascending key order."""
        nil = self._nil
        stack: list[_Node] = []
        node = self._root
        while stack or node is not nil:
            while node is not nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[Any]:
        """Keys in ascending order."""
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[Any]:
        """Values in ascending key order."""
        for _, v in self.items():
            yield v

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    def min_key(self) -> Any:
        """Smallest key (KeyError when empty)."""
        if self._root is self._nil:
            raise KeyError("empty tree")
        return self._minimum(self._root).key

    def max_key(self) -> Any:
        """Largest key (KeyError when empty)."""
        if self._root is self._nil:
            raise KeyError("empty tree")
        node = self._root
        while node.right is not self._nil:
            node = node.right
        return node.key

    def clear(self) -> None:
        """Drop every entry."""
        self._root = self._nil
        self._size = 0

    # ------------------------------------------------------------- invariants
    def check_invariants(self) -> int:
        """Verify red-black invariants; return the tree's black height.

        Used by the property-based test suite.  Raises AssertionError on
        violation.
        """
        nil = self._nil
        assert self._root.color == BLACK, "root must be black"

        def walk(node: _Node, lo: Any, hi: Any) -> int:
            if node is nil:
                return 1
            if lo is not None:
                assert node.key > lo, "BST order violated (left)"
            if hi is not None:
                assert node.key < hi, "BST order violated (right)"
            if node.color == RED:
                assert node.left.color == BLACK and node.right.color == BLACK, (
                    "red node with red child"
                )
            lh = walk(node.left, lo, node.key)
            rh = walk(node.right, node.key, hi)
            assert lh == rh, "black height mismatch"
            return lh + (1 if node.color == BLACK else 0)

        return walk(self._root, None, None)
