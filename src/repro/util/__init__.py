"""Generic data structures used by the PapyrusKV runtime."""

from repro.util.bloom import BloomFilter
from repro.util.hashing import fnv1a_64, builtin_key_hash
from repro.util.lru import LRUCache
from repro.util.queues import BoundedFIFO, QueueClosed
from repro.util.rbtree import RedBlackTree

__all__ = [
    "BloomFilter",
    "BoundedFIFO",
    "LRUCache",
    "QueueClosed",
    "RedBlackTree",
    "builtin_key_hash",
    "fnv1a_64",
]
