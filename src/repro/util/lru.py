"""Byte-budgeted LRU cache.

"The cache is a kind of MemTable, and it is managed in a LRU fashion"
(paper §2.3).  The local cache holds pairs fetched from SSTables; the
remote cache holds pairs fetched from remote ranks.  Capacity is a byte
budget (sum of key+value lengths), matching MemTable-style accounting.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator, List, Optional, Tuple

from repro.analysis.runtime import annotate_read, annotate_write


class LRUCache:
    """LRU map from ``bytes`` keys to ``bytes`` values with a byte budget."""

    __slots__ = ("capacity_bytes", "_data", "_bytes", "hits", "misses",
                 "evictions", "_race_tag")

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._data: OrderedDict[bytes, bytes] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the cached value and mark it most-recently-used."""
        annotate_write(self, "lru")  # recency + counters mutate
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: bytes) -> Optional[bytes]:
        """Return the value without touching recency or statistics."""
        annotate_read(self, "lru")
        return self._data.get(key)

    # --------------------------------------------------------------- mutation
    def put(self, key: bytes, value: bytes) -> None:
        """Insert/refresh an entry, evicting LRU entries to fit the budget."""
        annotate_write(self, "lru")
        entry = len(key) + len(value)
        if entry > self.capacity_bytes:
            # An oversized entry cannot be cached; drop any stale copy.
            self.invalidate(key)
            return
        old = self._data.pop(key, None)
        if old is not None:
            self._bytes -= len(key) + len(old)
        self._data[key] = value
        self._bytes += entry
        while self._bytes > self.capacity_bytes and self._data:
            k, v = self._data.popitem(last=False)
            self._bytes -= len(k) + len(v)
            self.evictions += 1

    def invalidate(self, key: bytes) -> bool:
        """Drop a (possibly stale) entry. Returns True if it was present."""
        annotate_write(self, "lru")
        value = self._data.pop(key, None)
        if value is None:
            return False
        self._bytes -= len(key) + len(value)
        return True

    def clear(self) -> None:
        """Evict everything (used when protection flips to writable)."""
        annotate_write(self, "lru")
        self._data.clear()
        self._bytes = 0

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Snapshot of (key, value) pairs, LRU first."""
        return iter(list(self._data.items()))


class ObjectLRU:
    """Cost-budgeted LRU map from hashable keys to arbitrary values.

    Sibling of :class:`LRUCache` for caches whose entries are not byte
    strings — peer :class:`~repro.sstable.reader.SSTableReader` handles
    keyed ``(owner_dir, ssid)``, replicated metadata bundles, and the
    like.  Each ``put`` carries an explicit ``cost`` (bytes, or 1 for a
    pure entry-count bound); LRU entries are evicted until the total
    cost fits the budget.  Callers provide their own locking; the race
    annotations here only flag unlocked cross-thread use.
    """

    __slots__ = ("capacity", "_data", "_costs", "_cost", "hits", "misses",
                 "evictions", "_race_tag")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._costs: dict = {}
        self._cost = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __getitem__(self, key: Hashable) -> Any:
        """Mapping-style access without touching recency or statistics
        (``dict(cache)`` snapshots the contents)."""
        annotate_read(self, "lru")
        return self._data[key]

    @property
    def cost(self) -> int:
        """Summed cost of all cached entries."""
        return self._cost

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value and mark it most-recently-used."""
        annotate_write(self, "lru")  # recency + counters mutate
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: Hashable) -> Optional[Any]:
        """Return the value without touching recency or statistics."""
        annotate_read(self, "lru")
        return self._data.get(key)

    def put(self, key: Hashable, value: Any, cost: int = 1) -> None:
        """Insert/refresh an entry, evicting LRU entries to fit the budget."""
        annotate_write(self, "lru")
        if cost > self.capacity:
            self.invalidate(key)  # oversized entries cannot be cached
            return
        if self._data.pop(key, None) is not None:
            self._cost -= self._costs.pop(key)
        self._data[key] = value
        self._costs[key] = cost
        self._cost += cost
        while self._cost > self.capacity and self._data:
            k, _ = self._data.popitem(last=False)
            self._cost -= self._costs.pop(k)
            self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop a (possibly stale) entry. Returns True if it was present."""
        annotate_write(self, "lru")
        if self._data.pop(key, None) is None:
            return False
        self._cost -= self._costs.pop(key)
        return True

    def invalidate_where(self, pred: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``pred``; returns the count."""
        annotate_write(self, "lru")
        doomed = [k for k in self._data if pred(k)]
        for k in doomed:
            del self._data[k]
            self._cost -= self._costs.pop(k)
        return len(doomed)

    def clear(self) -> None:
        """Evict everything."""
        annotate_write(self, "lru")
        self._data.clear()
        self._costs.clear()
        self._cost = 0

    def keys(self) -> List[Hashable]:
        """Snapshot of cached keys, LRU first."""
        annotate_read(self, "lru")
        return list(self._data.keys())

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """Snapshot of (key, value) pairs, LRU first."""
        annotate_read(self, "lru")
        return iter(list(self._data.items()))
