"""CRC32C (Castagnoli) checksums for the v2 on-disk format.

The container has no ``crc32c`` wheel, so this is a table-driven pure
Python implementation of the reflected Castagnoli polynomial
(0x1EDC6F41, reflected 0x82F63B78) — the same CRC used by iSCSI, ext4
metadata, and most LSM stores.  Speed is adequate here because the
simulator's tables are small and benchmark acceptance is measured in
*virtual* time; if a native ``crc32c`` module is importable we use it.
"""

from __future__ import annotations

_POLY = 0x82F63B78


def _make_table() -> list:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _make_table()


def _crc32c_py(data: bytes, crc: int = 0) -> int:
    """CRC32C of ``data``, optionally continuing from ``crc``."""
    crc ^= 0xFFFFFFFF
    table = _TABLE
    for b in data:
        crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


try:  # pragma: no cover - exercised only where the wheel exists
    from crc32c import crc32c as _crc32c_native  # type: ignore

    def crc32c(data: bytes, crc: int = 0) -> int:
        """CRC32C of ``data``, optionally continuing from ``crc``."""
        return _crc32c_native(data, crc)

except ImportError:
    crc32c = _crc32c_py


# Known-answer self check ("123456789" -> 0xE3069283); a wrong table
# here would silently quarantine every table ever written.
assert _crc32c_py(b"123456789") == 0xE3069283
