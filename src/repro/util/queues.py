"""Bounded FIFO queues used for flushing and migration.

The paper's flushing queue is "a lock-free, fixed-size, FIFO queue"
(§2.4); when it is full the caller rank blocks on the put operation
until the compaction thread drains a slot, which "prevents the unflushed
MemTables from consuming too much system memory".  CPython cannot express
a lock-free queue, but the blocking/back-pressure semantics are identical.

The queue also supports snapshot iteration newest-first, which get
operations use to search immutable MemTables "from the tail to the head"
(§2.6).
"""

from __future__ import annotations

import threading
from typing import Generic, Iterator, List, Optional, TypeVar

from repro.analysis.runtime import get_detector, make_lock
from repro.analysis.vector_clock import Clock

T = TypeVar("T")


class QueueClosed(Exception):
    """Raised when operating on a closed queue."""


class BoundedFIFO(Generic[T]):
    """Fixed-capacity FIFO with blocking enqueue and snapshot iteration."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: List[T] = []
        #: producer vector clocks, parallel to _items (race detector
        #: hand-off edges; None entries when the detector is off)
        self._vcs: List[Optional[Clock]] = []
        self._lock = make_lock("queue.fifo")
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    @staticmethod
    def _handoff_vc() -> Optional[Clock]:
        det = get_detector()
        return None if det is None else det.on_handoff_send()

    @staticmethod
    def _join_vc(vc: Optional[Clock]) -> None:
        det = get_detector()
        if det is not None and vc:
            det.on_handoff_recv(vc)

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: T, timeout: Optional[float] = None) -> None:
        """Enqueue, blocking while the queue is full."""
        with self._not_full:
            while len(self._items) >= self.capacity:
                if self._closed:
                    raise QueueClosed
                if not self._not_full.wait(timeout):
                    raise TimeoutError("queue full")
            if self._closed:
                raise QueueClosed
            self._items.append(item)
            self._vcs.append(self._handoff_vc())
            self._not_empty.notify()

    def try_put(self, item: T) -> bool:
        """Enqueue without blocking. Returns False if full."""
        with self._not_full:
            if self._closed:
                raise QueueClosed
            if len(self._items) >= self.capacity:
                return False
            self._items.append(item)
            self._vcs.append(self._handoff_vc())
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None) -> T:
        """Dequeue the oldest item, blocking while empty.

        Raises :class:`QueueClosed` once the queue is closed *and* drained.
        """
        with self._not_empty:
            while not self._items:
                if self._closed:
                    raise QueueClosed
                if not self._not_empty.wait(timeout):
                    raise TimeoutError("queue empty")
            item = self._items.pop(0)
            self._join_vc(self._vcs.pop(0))
            self._not_full.notify()
            return item

    def remove(self, item: T) -> bool:
        """Remove a specific item (identity match). Returns True if found.

        Used when a flushed MemTable is retired out of the snapshot the
        background worker took.
        """
        with self._lock:
            for i, existing in enumerate(self._items):
                if existing is item:
                    del self._items[i]
                    self._join_vc(self._vcs.pop(i))
                    self._not_full.notify()
                    return True
            return False

    def snapshot_newest_first(self) -> Iterator[T]:
        """Immutable snapshot, newest (tail) first — the get search order."""
        with self._lock:
            return iter(list(reversed(self._items)))

    def drain(self) -> List[T]:
        """Atomically remove and return everything (oldest first)."""
        with self._lock:
            items, self._items = self._items, []
            vcs, self._vcs = self._vcs, []
            for vc in vcs:
                self._join_vc(vc)
            self._not_full.notify_all()
            return items

    def close(self) -> None:
        """Close the queue: getters drain then raise QueueClosed."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
