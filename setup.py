"""Legacy setup shim.

The offline environment ships setuptools 65 without the ``wheel``
package, which breaks PEP-517 editable installs; this shim lets
``pip install -e .`` fall back to the classic develop-mode path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "PapyrusKV (SC'17) reproduction: a parallel embedded key-value "
        "store for distributed NVM architectures"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
